//! A small dependency-free argument parser for the `cira` CLI.
//!
//! Supports `--flag value`, `--flag=value`, boolean `--flag`, and
//! positional arguments, with typed accessors and an unknown-flag check.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: BTreeMap<String, Vec<String>>,
}

/// Errors raised while parsing or reading arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// A flag that the command does not accept.
    UnknownFlag(String),
    /// A required flag was not supplied.
    MissingFlag(&'static str),
    /// A flag value failed to parse.
    BadValue {
        /// The flag name.
        flag: String,
        /// The raw value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// Too many / too few positional arguments.
    Positional(&'static str),
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::UnknownFlag(name) => write!(f, "unknown flag --{name}"),
            ArgsError::MissingFlag(name) => write!(f, "missing required flag --{name}"),
            ArgsError::BadValue {
                flag,
                value,
                expected,
            } => {
                write!(f, "--{flag}: expected {expected}, got {value:?}")
            }
            ArgsError::Positional(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ArgsError {}

impl Args {
    /// Parses raw arguments (excluding the program and subcommand names).
    ///
    /// Flags may take their value as the next token or after `=`. A flag
    /// followed by another flag (or end of input) is boolean.
    pub fn parse<I, S>(raw: I) -> Args
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let tokens: Vec<String> = raw.into_iter().map(Into::into).collect();
        let mut args = Args::default();
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            if let Some(name) = t.strip_prefix("--") {
                if let Some((k, v)) = name.split_once('=') {
                    args.flags
                        .entry(k.to_owned())
                        .or_default()
                        .push(v.to_owned());
                } else if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                    args.flags
                        .entry(name.to_owned())
                        .or_default()
                        .push(tokens[i + 1].clone());
                    i += 1;
                } else {
                    args.flags
                        .entry(name.to_owned())
                        .or_default()
                        .push(String::new());
                }
            } else {
                args.positional.push(t.clone());
            }
            i += 1;
        }
        args
    }

    /// Positional arguments in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// The single positional argument, if exactly one was given.
    pub fn single_positional(&self, what: &'static str) -> Result<&str, ArgsError> {
        match self.positional() {
            [one] => Ok(one),
            _ => Err(ArgsError::Positional(what)),
        }
    }

    /// Whether a boolean flag is present.
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// The last value of a string flag, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .get(name)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    /// All values of a repeatable flag, in order (empty if absent).
    pub fn get_all(&self, name: &str) -> Vec<&str> {
        self.flags
            .get(name)
            .map(|v| v.iter().map(String::as_str).collect())
            .unwrap_or_default()
    }

    /// A required string flag.
    pub fn require(&self, name: &'static str) -> Result<&str, ArgsError> {
        self.get(name).ok_or(ArgsError::MissingFlag(name))
    }

    /// An optional typed flag.
    pub fn get_parsed<T: std::str::FromStr>(
        &self,
        name: &str,
        expected: &'static str,
    ) -> Result<Option<T>, ArgsError> {
        match self.get(name) {
            None => Ok(None),
            Some(raw) => raw.parse::<T>().map(Some).map_err(|_| ArgsError::BadValue {
                flag: name.to_owned(),
                value: raw.to_owned(),
                expected,
            }),
        }
    }

    /// A typed flag with a default.
    pub fn get_or<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgsError> {
        Ok(self.get_parsed(name, expected)?.unwrap_or(default))
    }

    /// Rejects flags outside the allowed set.
    pub fn check_known(&self, allowed: &[&str]) -> Result<(), ArgsError> {
        for name in self.flags.keys() {
            if !allowed.contains(&name.as_str()) {
                return Err(ArgsError::UnknownFlag(name.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flag_styles() {
        // Note: a flag followed by a bare token consumes it as its value,
        // so positionals are written before flags (or boolean flags last).
        let a = Args::parse(["file.txt", "--len", "100", "--out=trace.cirt", "--verbose"]);
        assert_eq!(a.get("len"), Some("100"));
        assert_eq!(a.get("out"), Some("trace.cirt"));
        assert!(a.has("verbose"));
        assert_eq!(a.positional(), &["file.txt".to_owned()]);
    }

    #[test]
    fn last_value_wins() {
        let a = Args::parse(["--len", "1", "--len", "2"]);
        assert_eq!(a.get("len"), Some("2"));
        assert_eq!(a.get_all("len"), vec!["1", "2"]);
        assert!(a.get_all("missing").is_empty());
    }

    #[test]
    fn typed_accessors() {
        let a = Args::parse(["--len", "42"]);
        assert_eq!(a.get_or("len", 0u64, "integer").unwrap(), 42);
        assert_eq!(a.get_or("missing", 7u64, "integer").unwrap(), 7);
        let err = a.get_parsed::<u64>("len", "integer");
        assert_eq!(err.unwrap(), Some(42));
    }

    #[test]
    fn bad_value_reported() {
        let a = Args::parse(["--len", "banana"]);
        let err = a.get_or("len", 0u64, "an integer").unwrap_err();
        assert!(matches!(err, ArgsError::BadValue { .. }));
        assert!(err.to_string().contains("banana"));
    }

    #[test]
    fn missing_required_flag() {
        let a = Args::parse::<_, String>([]);
        assert_eq!(
            a.require("bench").unwrap_err(),
            ArgsError::MissingFlag("bench")
        );
    }

    #[test]
    fn unknown_flag_rejected() {
        let a = Args::parse(["--lenn", "3"]);
        assert!(matches!(
            a.check_known(&["len"]),
            Err(ArgsError::UnknownFlag(_))
        ));
        assert!(a.check_known(&["lenn"]).is_ok());
    }

    #[test]
    fn single_positional() {
        let one = Args::parse(["x.cirt"]);
        assert_eq!(one.single_positional("need one file").unwrap(), "x.cirt");
        let none = Args::parse::<_, String>([]);
        assert!(none.single_positional("need one file").is_err());
        let two = Args::parse(["a", "b"]);
        assert!(two.single_positional("need one file").is_err());
    }

    #[test]
    fn boolean_flag_at_end() {
        let a = Args::parse(["--quiet"]);
        assert!(a.has("quiet"));
        assert_eq!(a.get("quiet"), Some(""));
    }
}
