//! `cira` — command-line tools for branch traces, predictors, and
//! confidence experiments.
//!
//! ```text
//! cira suite                                   list the IBS-like benchmarks
//! cira gen --bench gcc --len 1000000 --out t.cirt
//! cira info t.cirt                             trace statistics
//! cira dump t.cirt --limit 20                  print records
//! cira predict --bench gcc --predictor gshare64k
//! cira confidence --bench gcc --mechanism resetting:16 --threshold 16
//! cira curve --bench gcc --out curve.csv       coverage-curve CSV
//! cira table --bench gcc                       Table-1 style counter table
//! cira vm prog.asm --mem 64 --trace out.cirt   run a tiny-VM program
//! cira serve --metrics-port 9001               server + /metrics endpoint
//! cira stats --connect 127.0.0.1:4747          live counters + latency quantiles
//! cira trace dump --connect 127.0.0.1:4747     flight-recorder Chrome trace
//! ```
//!
//! Run `cira help` for full usage.

mod args;

use std::process::ExitCode;

use cira_analysis::spec;

use args::Args;
use cira_analysis::export::{ascii_chart, save_curves_csv};
use cira_analysis::{runner, CounterTable, CoverageCurve};
use cira_core::{ConfidenceEstimator, LowRule, ThresholdEstimator};
use cira_trace::suite::ibs_like_suite;
use cira_trace::tinyvm::{assemble, Machine};
use cira_trace::{codec, BranchRecord, TraceStats};

const USAGE: &str = "\
cira — branch prediction confidence tools (Jacobsen/Rotenberg/Smith, MICRO-29 1996)

USAGE: cira <command> [flags]

COMMANDS
  suite                      list the synthetic IBS-like benchmarks
  gen                        generate a trace file
      --bench NAME [--len N] [--seed S] --out FILE
  info FILE                  statistics of a trace file
  dump FILE [--limit N]      print trace records
  predict                    run a predictor over a trace
      (--bench NAME | --trace FILE) [--len N] [--predictor SPEC]
  confidence                 run predictor + confidence estimator
      (--bench NAME | --trace FILE) [--len N] [--predictor SPEC]
      [--mechanism SPEC] [--index SPEC] [--init SPEC] [--threshold T]
  curve                      coverage curve (ideal reduction over keys)
      same flags as `confidence`, plus [--out FILE.csv] [--chart]
  table                      Table-1 style per-counter statistics
      same flags as `confidence`, plus [--max M]
  sweep                      all operating points of a counter estimator
      same flags as `confidence`, plus [--max M] [--out FILE.csv]
  mix                        interleave several benchmarks into one trace
      --bench A --bench B [...] [--len N] [--quantum Q] --out FILE
  vm FILE.asm                assemble and run a tiny-VM program
      [--mem WORDS] [--steps N] [--trace OUT.cirt] [--base PC]
  serve                      run the streaming confidence server
      [--addr HOST:PORT] [--port-file FILE] [--metrics-port PORT]
      [--max-frame BYTES] [--max-inflight N]
      [--write-timeout SECS] [--max-sessions N] [--idle-timeout SECS]
      [--park-capacity N] [--park-ttl SECS]
      [--park-dir DIR] [--park-disk-capacity BYTES]
      [--shards N]           event-loop shards (default: one per core)
      [--trace]              enable the in-memory flight recorder
      [--trace-capacity N]   events per ring buffer (default 4096)
  replay                     stream a trace through a running server
      --connect HOST:PORT (--bench NAME | --trace FILE) [--len N]
      [--batch N] [--verify] [--retries N] [--timeout SECS]
      [--park] [--resume TOKEN]
      plus the `confidence` spec flags
  stats                      inspect a running server's live metrics
      --connect HOST:PORT [--retries N] [--timeout SECS]
  trace dump                 dump a server's flight recorder as Chrome
      --connect HOST:PORT    trace-event JSON (load in chrome://tracing
      [--out FILE]           or Perfetto); prints to stdout without --out
  store inspect FILE         examine a durable park store (*.cirstore)
      [--decode]             also decode each CIRD checkpoint
  help                       show this text

GLOBAL FLAGS
  --log-level LEVEL          error|warn|info|debug|trace|off (any position;
                             overrides CIRA_LOG, default warn)

SPECS
  predictor: gshare:T:H | gshare64k | gshare4k | bimodal:B | gselect:T:H
             | local:B:H | agree:T:H:B | taken | not-taken
             | tage:B:N:MIN:MAX[:TAG] | tage64k
             | tage-sc-lite:B:N:MIN:MAX[:TAG] | tage-sc-lite64k
                                                        (default gshare64k)
  mechanism: cir:W | ones-count:W | saturating:MAX | resetting:MAX
             | two-level:VARIANT | self:PREDICTOR       (default resetting:16)
             (bare `self` shadows the session's --predictor spec)
  index:     pc:B | bhr:B | pcxorbhr:B | pcconcatbhr:B | gcir:B
                                                        (default pcxorbhr:16)
  init:      ones | zeros | lastbit | random:SEED       (default ones)
";

/// Strips every global `--log-level` flag (space or `=` form, any
/// position) from `argv`, installing the last one as the log filter.
/// Without the flag, the logger configures itself lazily from `CIRA_LOG`.
fn apply_log_level(argv: Vec<String>) -> Result<Vec<String>, String> {
    let mut out = Vec::with_capacity(argv.len());
    let mut it = argv.into_iter();
    while let Some(token) = it.next() {
        let raw = if let Some(v) = token.strip_prefix("--log-level=") {
            v.to_owned()
        } else if token == "--log-level" {
            it.next().ok_or("--log-level needs a value")?
        } else {
            out.push(token);
            continue;
        };
        cira_obs::log::init(cira_obs::Level::parse(&raw)?);
    }
    Ok(out)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let argv = match apply_log_level(argv) {
        Ok(argv) => argv,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some((command, rest)) = argv.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let args = Args::parse(rest.iter().cloned());
    let result = match command.as_str() {
        "suite" => cmd_suite(&args),
        "gen" => cmd_gen(&args),
        "info" => cmd_info(&args),
        "dump" => cmd_dump(&args),
        "predict" => cmd_predict(&args),
        "confidence" => cmd_confidence(&args),
        "curve" => cmd_curve(&args),
        "table" => cmd_table(&args),
        "sweep" => cmd_sweep(&args),
        "mix" => cmd_mix(&args),
        "vm" => cmd_vm(&args),
        "serve" => cmd_serve(&args),
        "replay" => cmd_replay(&args),
        "stats" => cmd_stats(&args),
        "trace" => cmd_trace(&args),
        "store" => cmd_store(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; try `cira help`").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn cmd_suite(args: &Args) -> CliResult {
    args.check_known(&[])?;
    println!(
        "{:<12} {:>9} {:>9} {:>12} {:>14}",
        "name", "regions", "static", "kernel pc", "construction"
    );
    for bench in ibs_like_suite() {
        println!(
            "{:<12} {:>9} {:>9} {:>#12x} {:>14}",
            bench.name(),
            bench.program().regions(),
            bench.program().static_branches(),
            bench.kernel_start_pc(),
            bench.profile().construction_seed,
        );
    }
    Ok(())
}

/// Loads the trace selected by `--bench`/`--trace` flags, bounded by
/// `--len` (default 1,000,000 for benchmarks, whole file for traces).
fn load_trace(args: &Args) -> Result<Vec<BranchRecord>, Box<dyn std::error::Error>> {
    let len: usize = args.get_or("len", 1_000_000u64, "a positive integer")? as usize;
    match (args.get("bench"), args.get("trace")) {
        (Some(name), None) => {
            let suite = ibs_like_suite();
            let bench = suite
                .iter()
                .find(|b| b.name() == name)
                .ok_or_else(|| format!("unknown benchmark {name:?}; see `cira suite`"))?;
            let seed = args.get_parsed::<u64>("seed", "an integer")?;
            let walker = match seed {
                Some(s) => bench.walker_with_seed(s),
                None => bench.walker(),
            };
            Ok(walker.take(len).collect())
        }
        (None, Some(path)) => {
            let file = std::fs::File::open(path)?;
            let records = codec::read_trace(std::io::BufReader::new(file))?;
            Ok(records.into_iter().take(len).collect())
        }
        _ => Err("exactly one of --bench or --trace is required".into()),
    }
}

const TRACE_FLAGS: &[&str] = &["bench", "trace", "len", "seed"];

fn cmd_gen(args: &Args) -> CliResult {
    args.check_known(&["bench", "len", "seed", "out"])?;
    let out = args.require("out")?.to_owned();
    if args.get("bench").is_none() {
        return Err("--bench is required".into());
    }
    let records = load_trace(args)?;
    let file = std::fs::File::create(&out)?;
    let n = codec::write_trace(std::io::BufWriter::new(file), records.iter().copied())?;
    println!("wrote {n} records to {out}");
    Ok(())
}

fn cmd_info(args: &Args) -> CliResult {
    args.check_known(&[])?;
    let path = args.single_positional("usage: cira info FILE")?;
    let file = std::fs::File::open(path)?;
    let records = codec::read_trace(std::io::BufReader::new(file))?;
    let stats: TraceStats = records.iter().copied().collect();
    println!("records:         {}", stats.dynamic_branches());
    println!("static branches: {}", stats.static_branches());
    println!("taken rate:      {:.2}%", 100.0 * stats.taken_rate());
    let bytes = std::fs::metadata(path)?.len();
    println!(
        "file size:       {bytes} bytes ({:.2} bytes/record)",
        bytes as f64 / stats.dynamic_branches().max(1) as f64
    );
    Ok(())
}

fn cmd_dump(args: &Args) -> CliResult {
    args.check_known(&["limit"])?;
    let path = args.single_positional("usage: cira dump FILE [--limit N]")?;
    let limit: u64 = args.get_or("limit", 32u64, "a positive integer")?;
    let file = std::fs::File::open(path)?;
    let reader = codec::TraceReader::new(std::io::BufReader::new(file))?;
    for (i, record) in reader.take(limit as usize).enumerate() {
        println!("{i:>8}  {}", record?);
    }
    Ok(())
}

fn cmd_predict(args: &Args) -> CliResult {
    args.check_known(&[TRACE_FLAGS, &["predictor"]].concat())?;
    let mut predictor = spec::parse_predictor(args.get("predictor").unwrap_or("gshare64k"))?;
    let records = load_trace(args)?;
    let run = runner::run_predictor(records, &mut predictor);
    println!("predictor:   {}", predictor.describe());
    println!("branches:    {}", run.branches);
    println!("mispredicts: {}", run.mispredicts);
    println!("miss rate:   {:.3}%", 100.0 * run.miss_rate());
    Ok(())
}

fn build_mechanism(
    args: &Args,
) -> Result<Box<dyn cira_core::ConfidenceMechanism>, Box<dyn std::error::Error>> {
    let index = spec::parse_index(args.get("index").unwrap_or("pcxorbhr:16"))?;
    let init = spec::parse_init(args.get("init").unwrap_or("ones"))?;
    let mechanism = match args.get("mechanism").unwrap_or("resetting:16") {
        // Bare `self` shadows whatever the session predicts with, so the
        // mechanism's strength buckets describe the actual predictor.
        "self" => format!("self:{}", args.get("predictor").unwrap_or("gshare64k")),
        other => other.to_owned(),
    };
    Ok(spec::parse_mechanism(&mechanism, index, init)?)
}

const CONF_FLAGS: &[&str] = &["predictor", "mechanism", "index", "init"];

fn cmd_confidence(args: &Args) -> CliResult {
    args.check_known(&[TRACE_FLAGS, CONF_FLAGS, &["threshold"]].concat())?;
    let mut predictor = spec::parse_predictor(args.get("predictor").unwrap_or("gshare64k"))?;
    let mechanism = build_mechanism(args)?;
    let threshold: u64 = args.get_or("threshold", 16u64, "a key threshold")?;
    let mut estimator = ThresholdEstimator::new(mechanism, LowRule::KeyBelow(threshold));
    let records = load_trace(args)?;
    let counts = runner::run_estimator(records, &mut predictor, &mut estimator);
    println!("predictor: {}", predictor.describe());
    println!("estimator: {}", estimator.describe());
    println!("{counts}");
    println!(
        "misprediction rate {:.3}% over {} branches",
        100.0 * counts.miss_rate(),
        counts.total()
    );
    Ok(())
}

fn cmd_curve(args: &Args) -> CliResult {
    args.check_known(&[TRACE_FLAGS, CONF_FLAGS, &["out", "chart"]].concat())?;
    let mut predictor = spec::parse_predictor(args.get("predictor").unwrap_or("gshare64k"))?;
    let mut mechanism = build_mechanism(args)?;
    let records = load_trace(args)?;
    let stats = runner::collect_mechanism_buckets(records, &mut predictor, &mut mechanism);
    let curve = CoverageCurve::from_buckets(&stats);
    println!("mechanism: {}", mechanism.describe());
    println!("miss rate: {:.3}%", 100.0 * stats.miss_rate());
    for budget in [5.0, 10.0, 20.0, 30.0, 50.0] {
        println!(
            "  lowest-confidence {budget:>4.0}% of branches hold {:5.1}% of mispredictions",
            curve.coverage_at(budget)
        );
    }
    if args.has("chart") {
        println!("\n{}", ascii_chart(&[("curve", &curve)], 72, 20));
    }
    if let Some(path) = args.get("out") {
        save_curves_csv(path, &[("curve", &curve)])?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_table(args: &Args) -> CliResult {
    args.check_known(&[TRACE_FLAGS, CONF_FLAGS, &["max"]].concat())?;
    let mut predictor = spec::parse_predictor(args.get("predictor").unwrap_or("gshare64k"))?;
    let mut mechanism = build_mechanism(args)?;
    let max: u32 = args.get_or("max", 16u32, "a counter maximum")?;
    let records = load_trace(args)?;
    let stats = runner::collect_mechanism_buckets(records, &mut predictor, &mut mechanism);
    println!("mechanism: {}", mechanism.describe());
    println!("{}", CounterTable::from_buckets(&stats, max));
    Ok(())
}

fn cmd_sweep(args: &Args) -> CliResult {
    args.check_known(&[TRACE_FLAGS, CONF_FLAGS, &["max", "out"]].concat())?;
    let mut predictor = spec::parse_predictor(args.get("predictor").unwrap_or("gshare64k"))?;
    let mut mechanism = build_mechanism(args)?;
    let max: u64 = args.get_or("max", 16u64, "a counter maximum")?;
    let records = load_trace(args)?;
    let stats = runner::collect_mechanism_buckets(records, &mut predictor, &mut mechanism);
    let sweep = cira_analysis::threshold_sweep(&stats, max);
    println!("mechanism: {}", mechanism.describe());
    println!(
        "{:>9} {:>9} {:>9} {:>7} {:>7} {:>7}",
        "threshold", "low set", "coverage", "PVN", "PVP", "SPEC"
    );
    for p in &sweep {
        println!(
            "{:>9} {:>8.1}% {:>8.1}% {:>7.3} {:>7.4} {:>7.3}",
            p.threshold,
            100.0 * p.low_fraction,
            100.0 * p.coverage,
            p.pvn,
            p.pvp,
            p.specificity
        );
    }
    if let Some(path) = args.get("out") {
        std::fs::write(path, cira_analysis::sweep_to_csv(&sweep))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_mix(args: &Args) -> CliResult {
    args.check_known(&["bench", "len", "seed", "quantum", "out"])?;
    let names = args.get_all("bench");
    if names.len() < 2 {
        return Err("mix needs at least two --bench flags".into());
    }
    let out = args.require("out")?.to_owned();
    let len: usize = args.get_or("len", 200_000u64, "a positive integer")? as usize;
    let quantum: usize = args.get_or("quantum", 10_000u64, "a positive integer")? as usize;
    let suite = ibs_like_suite();
    let mut traces = Vec::with_capacity(names.len());
    for name in &names {
        let bench = suite
            .iter()
            .find(|b| b.name() == *name)
            .ok_or_else(|| format!("unknown benchmark {name:?}; see `cira suite`"))?;
        traces.push(bench.walker().take(len).collect::<Vec<_>>());
    }
    let mixed = cira_trace::transform::interleave(traces, quantum);
    let file = std::fs::File::create(&out)?;
    let n = codec::write_trace(std::io::BufWriter::new(file), mixed.iter().copied())?;
    println!(
        "wrote {n} records ({} programs, quantum {quantum}) to {out}",
        names.len()
    );
    Ok(())
}

/// The client-side resilience flags shared by `replay` and `stats`:
/// `--retries N` enables automatic reconnect-and-resume with exponential
/// backoff, `--timeout SECS` bounds both connect and per-read waits.
const CLIENT_FLAGS: &[&str] = &["retries", "timeout"];

fn client_builder(
    args: &Args,
    addr: &str,
) -> Result<cira_serve::ClientBuilder, Box<dyn std::error::Error>> {
    let mut builder = cira_serve::Client::builder(addr);
    if let Some(secs) = args.get_parsed::<u64>("timeout", "a timeout in seconds")? {
        if secs == 0 {
            return Err("--timeout must be positive".into());
        }
        let t = std::time::Duration::from_secs(secs);
        builder = builder.connect_timeout(t).read_timeout(t);
    }
    if let Some(n) = args.get_parsed::<u32>("retries", "an attempt count")? {
        builder = builder.retry(cira_serve::RetryPolicy::retries(n));
    }
    Ok(builder)
}

fn cmd_serve(args: &Args) -> CliResult {
    args.check_known(&[
        "addr",
        "port-file",
        "metrics-port",
        "max-frame",
        "max-inflight",
        "write-timeout",
        "max-sessions",
        "idle-timeout",
        "park-capacity",
        "park-ttl",
        "park-dir",
        "park-disk-capacity",
        "shards",
        "trace",
        "trace-capacity",
    ])?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:0");
    let mut cfg = cira_serve::ServerConfig::default();
    cfg.max_frame = args.get_or("max-frame", cfg.max_frame, "a byte count")?;
    cfg.max_inflight = args.get_or("max-inflight", cfg.max_inflight, "a batch count")?;
    if cfg.max_frame == 0 || cfg.max_inflight == 0 {
        return Err("--max-frame and --max-inflight must be positive".into());
    }
    // Seconds on the command line, milliseconds in the config; 0 disables
    // the write timeout entirely.
    if let Some(secs) = args.get_parsed::<u64>("write-timeout", "a timeout in seconds")? {
        cfg.write_timeout_ms = secs.saturating_mul(1000);
    }
    cfg.max_sessions = args.get_or("max-sessions", cfg.max_sessions, "a session count")?;
    if cfg.max_sessions == 0 {
        return Err("--max-sessions must be positive".into());
    }
    // Idle/TTL flags follow the write-timeout convention: seconds on the
    // command line, milliseconds in the config, 0 disables.
    if let Some(secs) = args.get_parsed::<u64>("idle-timeout", "a timeout in seconds")? {
        cfg.idle_timeout_ms = secs.saturating_mul(1000);
    }
    cfg.park_capacity = args.get_or("park-capacity", cfg.park_capacity, "a session count")?;
    if let Some(secs) = args.get_parsed::<u64>("park-ttl", "a TTL in seconds")? {
        if secs == 0 {
            return Err("--park-ttl must be positive".into());
        }
        cfg.park_ttl_ms = secs.saturating_mul(1000);
    }
    if let Some(dir) = args.get("park-dir") {
        cfg.park_dir = Some(std::path::PathBuf::from(dir));
    }
    cfg.park_disk_capacity = args.get_or(
        "park-disk-capacity",
        cfg.park_disk_capacity,
        "a byte budget (0 = unlimited)",
    )?;
    if cfg.park_disk_capacity != 0 && cfg.park_dir.is_none() {
        return Err("--park-disk-capacity needs --park-dir".into());
    }
    // 0 (the default) resolves to one shard per core at startup.
    cfg.shards = args.get_or("shards", cfg.shards, "a shard count (0 = per core)")?;
    cfg.trace = args.has("trace");
    cfg.trace_capacity =
        args.get_or("trace-capacity", cfg.trace_capacity, "an event count per ring")?;
    if cfg.trace && cfg.trace_capacity == 0 {
        return Err("--trace-capacity must be positive".into());
    }
    if let Some(port) = args.get_parsed::<u16>("metrics-port", "a TCP port")? {
        // Same interface as the protocol listener, so a local server stays
        // local.
        let host = addr.rsplit_once(':').map_or("127.0.0.1", |(h, _)| h);
        cfg.metrics_addr = Some(format!("{host}:{port}"));
    }
    let handle = cira_serve::serve(addr, cfg, cira_analysis::engine::pool::WorkerPool::global())?;
    let local = handle.local_addr();
    println!("cira-serve listening on {local}");
    if let Some(http) = handle.metrics_http_addr() {
        println!("metrics at http://{http}/metrics");
    }
    if let Some(path) = args.get("port-file") {
        // Written atomically (write + rename) so a watcher never reads a
        // half-written port number.
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, format!("{}\n", local.port()))?;
        std::fs::rename(&tmp, path)?;
        println!("wrote port to {path}");
    }
    cira_serve::shutdown::install_signal_handlers(&handle.shutdown_token());
    println!("press ctrl-c (or send SIGTERM) to drain and stop");
    handle.wait();
    println!("cira-serve stopped");
    Ok(())
}

fn cmd_replay(args: &Args) -> CliResult {
    args.check_known(
        &[
            TRACE_FLAGS,
            CONF_FLAGS,
            CLIENT_FLAGS,
            &["connect", "batch", "threshold", "verify", "park", "resume"],
        ]
        .concat(),
    )?;
    let addr = args.require("connect")?.to_owned();
    let batch: usize = args.get_or("batch", 4096u64, "a positive record count")? as usize;
    if batch == 0 {
        return Err("--batch must be positive".into());
    }
    let predictor = args.get("predictor").unwrap_or("gshare64k").to_owned();
    let config = cira_serve::HelloConfig {
        mechanism: match args.get("mechanism").unwrap_or("resetting:16") {
            // Same bare-`self` expansion as the offline commands.
            "self" => format!("self:{predictor}"),
            other => other.to_owned(),
        },
        predictor,
        index: args.get("index").unwrap_or("pcxorbhr:16").to_owned(),
        init: args.get("init").unwrap_or("ones").to_owned(),
        threshold: args.get_or("threshold", 16u64, "a key threshold")?,
    };
    let records = load_trace(args)?;
    let trace: codec::PackedTrace = records.iter().copied().collect();

    let resume = args.get_parsed::<u64>("resume", "a resume token")?;
    if resume.is_some() && args.has("verify") {
        return Err("--verify replays the whole trace locally; it cannot follow --resume".into());
    }
    let mut client = match resume {
        // A parked session: the server restores predictor, mechanism, and
        // statistics from its durable store; the spec flags are ignored.
        Some(token) => {
            let client = client_builder(args, &addr)?.resume(token)?;
            println!("resumed session {} on {addr}", client.session_id());
            client
        }
        None => {
            let client = client_builder(args, &addr)?.connect(config.clone())?;
            println!("connected to {addr} (session {})", client.session_id());
            println!("predictor: {}", client.predictor());
            println!("mechanism: {}", client.mechanism());
            client
        }
    };
    let totals = client.stream(&trace, batch)?;
    if client.retries() > 0 {
        println!(
            "recovered from {} connection failure(s) via {} session resume(s)",
            client.retries(),
            client.resumes()
        );
    }
    println!(
        "streamed {} records in {} batches: {} mispredicts ({:.3}%), {} low-confidence ({:.1}%)",
        totals.records,
        totals.batches,
        totals.mispredicts,
        100.0 * totals.mispredicts as f64 / totals.records.max(1) as f64,
        totals.low_confidence,
        100.0 * totals.low_confidence as f64 / totals.records.max(1) as f64,
    );
    let server_stats = client.snapshot_stats()?;

    // The final summary comes from the server's own STATS counters, not
    // the client-side ack totals, so it reflects what was actually scored.
    let wire = client.stats()?;
    let wire_get = |name: &str| {
        wire.iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    let (records, mispredicts, low) = (
        wire_get("records"),
        wire_get("mispredicts"),
        wire_get("low_confidence"),
    );
    println!(
        "server totals: {} records, {:.3}% mispredict rate, {:.1}% low-confidence coverage",
        records,
        100.0 * mispredicts as f64 / records.max(1) as f64,
        100.0 * low as f64 / records.max(1) as f64,
    );
    if args.has("park") {
        let token = client.park()?;
        println!("parked durably; resume with: cira replay --connect {addr} --resume {token}");
    } else {
        client.goodbye()?;
    }

    if args.has("verify") {
        // Re-run locally and require bit-identical bucket statistics.
        let predictor = spec::parse_predictor(&config.predictor)?;
        let index = spec::parse_index(&config.index)?;
        let init = spec::parse_init(&config.init)?;
        let mechanism = spec::parse_mechanism(&config.mechanism, index, init)?;
        let mut local = cira_analysis::engine::replay::StreamingReplay::new(predictor, mechanism);
        local.feed(&trace);
        if *local.stats() == server_stats {
            println!("verify: server statistics are bit-identical to the local engine");
        } else {
            return Err("verify FAILED: server statistics differ from the local engine".into());
        }
    }
    Ok(())
}

fn cmd_stats(args: &Args) -> CliResult {
    args.check_known(&[CLIENT_FLAGS, &["connect"]].concat())?;
    let addr = args.require("connect")?.to_owned();
    // A raw (sessionless) connection: STATS and METRICS answer pre-HELLO.
    let mut client = client_builder(args, &addr)?.connect_raw()?;
    let pairs = client.stats()?;
    let text = client.metrics_text()?;
    client.goodbye()?;

    println!("server counters ({addr}):");
    let width = pairs.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    for (name, value) in &pairs {
        println!("  {name:<width$}  {value}");
    }

    let doc = cira_serve::cira_obs::promtext::Exposition::parse_validated(&text)
        .map_err(|e| format!("bad metrics exposition from server: {e}"))?;
    println!();
    println!(
        "  {:<30} {:>9} {:>10} {:>8} {:>8} {:>8}",
        "histogram", "count", "mean", "p50", "p90", "p99"
    );
    for family in &doc.families {
        if family.kind != cira_serve::cira_obs::promtext::MetricType::Histogram {
            continue;
        }
        let Some(h) = doc.histogram(&family.name) else {
            continue;
        };
        let mean = if h.count > 0 {
            h.sum / h.count as f64
        } else {
            0.0
        };
        println!(
            "  {:<30} {:>9} {:>10.1} {:>8.0} {:>8.0} {:>8.0}",
            family.name,
            h.count,
            mean,
            h.quantile(0.50),
            h.quantile(0.90),
            h.quantile(0.99),
        );
    }
    Ok(())
}

fn cmd_trace(args: &Args) -> CliResult {
    args.check_known(&[CLIENT_FLAGS, &["connect", "out"]].concat())?;
    let sub = args.single_positional("usage: cira trace dump --connect HOST:PORT [--out FILE]")?;
    if sub != "dump" {
        return Err(format!("unknown trace subcommand {sub:?}; try `cira trace dump`").into());
    }
    let addr = args.require("connect")?.to_owned();
    // A raw (sessionless) connection: TRACE_DUMP answers pre-HELLO, like
    // STATS and METRICS, so no predictor spec is needed to pull a trace.
    let mut client = client_builder(args, &addr)?.connect_raw()?;
    let json = client.trace_json()?;
    client.goodbye()?;
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &json)?;
            println!("wrote {} bytes to {path}", json.len());
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn cmd_store(args: &Args) -> CliResult {
    args.check_known(&["decode"])?;
    let (sub, path) = match args.positional() {
        [sub, path] => (sub.as_str(), path.as_str()),
        _ => return Err("usage: cira store inspect FILE [--decode]".into()),
    };
    if sub != "inspect" {
        return Err(format!("unknown store subcommand {sub:?}; try `cira store inspect FILE`").into());
    }
    // Capacity 0 = no byte budget: inspection never needs to write.
    let mut store = cira_store::SessionStore::open(std::path::Path::new(path), 0)?;
    let bytes = std::fs::metadata(path)?.len();
    let now_ms = cira_serve::park::unix_now_ms();
    println!("store:        {path}");
    println!(
        "file size:    {bytes} bytes ({} pages of {})",
        bytes / cira_store::page::PAGE_SIZE as u64,
        cira_store::page::PAGE_SIZE
    );
    println!("live records: {}", store.len());
    println!("bytes used:   {}", store.bytes_used());
    let mut entries = store.entries();
    entries.sort_by_key(|(token, _)| *token);
    if !entries.is_empty() {
        println!();
        println!(
            "{:>20} {:>10} {:>6} {:>14} {:>10}",
            "token", "session", "epoch", "deadline", "blob"
        );
    }
    for (token, meta) in entries {
        let (_, blob) = store.get(token)?;
        let deadline = if meta.deadline_unix_ms == 0 {
            "never".to_owned()
        } else if meta.deadline_unix_ms <= now_ms {
            "expired".to_owned()
        } else {
            format!("+{:.1}s", (meta.deadline_unix_ms - now_ms) as f64 / 1000.0)
        };
        println!(
            "{:>20} {:>10} {:>6} {:>14} {:>10}",
            token,
            meta.session_id,
            meta.epoch,
            deadline,
            format!("{} B", blob.len()),
        );
        if args.has("decode") {
            let c = cira_store::Checkpoint::decode(&blob)?;
            println!(
                "{:>20}   predictor {} | mechanism {} | index {} | init {} | threshold {}",
                "", c.predictor, c.mechanism, c.index, c.init, c.threshold
            );
            println!(
                "{:>20}   {} branches in {} batches, {} mispredicts, {} low-confidence, last seq {:?}",
                "", c.branches, c.batches, c.mispredicts, c.low_confidence, c.last_seq
            );
        }
    }
    Ok(())
}

fn cmd_vm(args: &Args) -> CliResult {
    args.check_known(&["mem", "steps", "trace", "base"])?;
    let path = args.single_positional("usage: cira vm FILE.asm [flags]")?;
    let source = std::fs::read_to_string(path)?;
    let program = assemble(&source)?;
    let mem: usize = args.get_or("mem", 1024u64, "a word count")? as usize;
    let steps: u64 = args.get_or("steps", 10_000_000u64, "a step budget")?;
    let base: u64 = args.get_or("base", 0x1_0000u64, "a base address")?;
    let mut machine = Machine::new(program, mem).with_code_base(base);
    let trace = machine.run(steps)?;
    println!(
        "halted after {} instructions; {} conditional branches",
        machine.steps(),
        trace.len()
    );
    let stats: TraceStats = trace.iter().copied().collect();
    println!(
        "static branches: {}; taken rate {:.1}%",
        stats.static_branches(),
        100.0 * stats.taken_rate()
    );
    println!(
        "registers: {}",
        (0..16)
            .map(|r| format!("r{r}={}", machine.reg(r)))
            .collect::<Vec<_>>()
            .join(" ")
    );
    if let Some(out) = args.get("trace") {
        let file = std::fs::File::create(out)?;
        codec::write_trace(std::io::BufWriter::new(file), trace.iter().copied())?;
        println!("wrote trace to {out}");
    }
    Ok(())
}
