//! End-to-end tests of the `cira` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cira(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cira"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cira_cli_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn suite_lists_all_benchmarks() {
    let out = cira(&["suite"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    for name in ["gcc", "jpeg", "sdet", "video_play"] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
}

#[test]
fn gen_info_dump_round_trip() {
    let path = temp_path("t.cirt");
    let path_str = path.to_str().unwrap();

    let out = cira(&["gen", "--bench", "jpeg", "--len", "5000", "--out", path_str]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("wrote 5000 records"));

    let out = cira(&["info", path_str]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("records:         5000"));

    let out = cira(&["dump", path_str, "--limit", "4"]);
    assert!(out.status.success());
    assert_eq!(stdout(&out).lines().count(), 4);
}

#[test]
fn predict_reports_miss_rate() {
    let out = cira(&[
        "predict",
        "--bench",
        "jpeg",
        "--len",
        "20000",
        "--predictor",
        "gshare4k",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("gshare(12,12)"));
    assert!(text.contains("miss rate"));
}

#[test]
fn confidence_reports_coverage() {
    let out = cira(&[
        "confidence",
        "--bench",
        "gcc",
        "--len",
        "20000",
        "--mechanism",
        "resetting:16",
        "--threshold",
        "8",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("coverage"));
}

#[test]
fn predict_runs_tage_specs() {
    let out = cira(&[
        "predict",
        "--bench",
        "jpeg",
        "--len",
        "20000",
        "--predictor",
        "tage:10:4:2:32:9",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("tage(10,4c,2..32,tag9)"));
}

#[test]
fn bare_self_mechanism_shadows_the_session_predictor() {
    let out = cira(&[
        "confidence",
        "--bench",
        "gcc",
        "--len",
        "20000",
        "--predictor",
        "tage-sc-lite:10:4:2:32:9",
        "--mechanism",
        "self",
        "--threshold",
        "4",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("self-confidence(tage-sc-lite(10,4c,2..32,tag9))"),
        "bare `self` must expand to the --predictor spec, got:\n{text}"
    );
}

#[test]
fn curve_writes_csv() {
    let path = temp_path("curve.csv");
    let out = cira(&[
        "curve",
        "--bench",
        "jpeg",
        "--len",
        "20000",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let csv = std::fs::read_to_string(&path).unwrap();
    assert!(csv.starts_with("series,"));
    assert!(csv.lines().count() > 2);
}

#[test]
fn table_prints_counter_rows() {
    let out = cira(&["table", "--bench", "jpeg", "--len", "20000", "--max", "4"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("Count"));
    assert!(text.lines().count() >= 6);
}

#[test]
fn vm_runs_assembly_and_saves_trace() {
    let asm = temp_path("count.asm");
    std::fs::write(
        &asm,
        "li r1, 7\nli r2, 0\nloop: addi r2, r2, 1\nblt r2, r1, loop\nhalt\n",
    )
    .unwrap();
    let trace = temp_path("vm.cirt");
    let out = cira(&[
        "vm",
        asm.to_str().unwrap(),
        "--mem",
        "8",
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("7 conditional branches"));

    let out = cira(&["info", trace.to_str().unwrap()]);
    assert!(stdout(&out).contains("records:         7"));
}

#[test]
fn errors_are_reported_with_nonzero_exit() {
    let cases: &[&[&str]] = &[
        &["bogus"],
        &["predict"],                                              // no trace source
        &["predict", "--bench", "nope"],                           // unknown benchmark
        &["predict", "--bench", "gcc", "--oops", "1"],             // unknown flag
        &["predict", "--bench", "gcc", "--predictor", "gshare:9"], // bad spec
        &["info", "/nonexistent/file.cirt"],
        &["gen", "--bench", "gcc"], // missing --out
        &["replay", "--bench", "gcc"], // missing --connect
    ];
    for case in cases {
        let out = cira(case);
        assert!(!out.status.success(), "expected failure for {case:?}");
        assert!(
            stderr(&out).contains("error") || stderr(&out).contains("USAGE"),
            "no error text for {case:?}"
        );
    }
}

#[test]
fn malformed_specs_fail_with_usage_in_the_message() {
    // Every spec surface — predictor, mechanism, index, init — must turn a
    // typo into exit 1 plus the accepted forms, never a panic.
    let cases: &[(&[&str], &str)] = &[
        (
            &["predict", "--bench", "gcc", "--len", "100", "--predictor", "frobnicate:1"],
            "predictor",
        ),
        (
            &["confidence", "--bench", "gcc", "--len", "100", "--mechanism", "resetting:0"],
            "mechanism",
        ),
        (
            &["confidence", "--bench", "gcc", "--len", "100", "--index", "pc"],
            "index",
        ),
        (
            &["curve", "--bench", "gcc", "--len", "100", "--init", "none"],
            "init",
        ),
        (
            &["table", "--bench", "gcc", "--len", "100", "--mechanism", "two-level:nope"],
            "mechanism",
        ),
    ];
    for (case, kind) in cases {
        let out = cira(case);
        assert!(!out.status.success(), "expected failure for {case:?}");
        let err = stderr(&out);
        assert!(
            err.contains(&format!("invalid {kind} spec")) && err.contains("expected one of"),
            "unhelpful message for {case:?}: {err}"
        );
    }
}

/// Starts `cira serve` on an ephemeral port and returns (child, port).
fn start_server(port_file: &std::path::Path) -> (std::process::Child, u16) {
    start_server_with(port_file, &[])
}

/// Starts `cira serve` with extra flags and returns (child, port).
fn start_server_with(port_file: &std::path::Path, extra: &[&str]) -> (std::process::Child, u16) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_cira"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--port-file",
            port_file.to_str().unwrap(),
        ])
        .args(extra)
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("server starts");
    for _ in 0..100 {
        if let Ok(text) = std::fs::read_to_string(port_file) {
            if let Ok(port) = text.trim().parse() {
                return (child, port);
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let _ = child.kill();
    let _ = child.wait();
    panic!("server never wrote its port file");
}

#[test]
fn serve_and_replay_verify_bit_identical() {
    let port_file = temp_path("serve.port");
    let (mut server, port) = start_server(&port_file);

    let out = cira(&[
        "replay",
        "--connect",
        &format!("127.0.0.1:{port}"),
        "--bench",
        "jpeg",
        "--len",
        "30000",
        "--batch",
        "4096",
        "--mechanism",
        "resetting:16",
        "--threshold",
        "8",
        "--verify",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("streamed 30000 records"), "{text}");
    assert!(text.contains("bit-identical"), "{text}");

    // TAGE specs negotiate and verify end-to-end over the same server.
    let out = cira(&[
        "replay",
        "--connect",
        &format!("127.0.0.1:{port}"),
        "--bench",
        "gcc",
        "--len",
        "20000",
        "--batch",
        "2048",
        "--predictor",
        "tage:10:4:2:32:9",
        "--mechanism",
        "self",
        "--threshold",
        "4",
        "--verify",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("tage(10,4c,2..32,tag9)"), "{text}");
    assert!(text.contains("bit-identical"), "{text}");

    // A bad spec over the wire is a clean client-side failure, and the
    // rejection names the specs this client offered.
    let out = cira(&[
        "replay",
        "--connect",
        &format!("127.0.0.1:{port}"),
        "--bench",
        "gcc",
        "--len",
        "100",
        "--predictor",
        "frobnicate:1",
    ]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("invalid predictor spec"), "{err}");
    assert!(err.contains("offered predictor=frobnicate:1"), "{err}");

    server.kill().expect("stop server");
    let _ = server.wait();
}

/// Runs `cira replay`, asserts success, and returns stdout.
fn replay_ok(args: &[&str]) -> String {
    let out = cira(&[&["replay"], args].concat());
    assert!(out.status.success(), "{}", stderr(&out));
    stdout(&out)
}

/// Extracts the resume token from `replay --park` output.
fn park_token(text: &str) -> String {
    text.lines()
        .find(|l| l.contains("--resume"))
        .and_then(|l| l.rsplit(' ').next())
        .unwrap_or_else(|| panic!("no resume token in:\n{text}"))
        .to_owned()
}

/// Extracts the `streamed N records ...` summary line.
fn streamed_line(text: &str) -> String {
    text.lines()
        .find(|l| l.starts_with("streamed "))
        .unwrap_or_else(|| panic!("no streamed line in:\n{text}"))
        .to_owned()
}

#[test]
fn park_survives_kill_dash_nine_and_resumes() {
    let park_dir = temp_path("park9");
    let store_file = park_dir.join("park.cirstore");
    let _ = std::fs::remove_dir_all(&park_dir);
    let park_flags = ["--park-dir", park_dir.to_str().unwrap()];

    let (mut first, port) = start_server_with(&temp_path("park9-a.port"), &park_flags);
    let addr = format!("127.0.0.1:{port}");

    // Two sessions fed the identical head (the bench walker is seeded, so
    // both replays see the same records), both parked durably.
    let head = ["--bench", "gcc", "--len", "20000"];
    let token_crash = park_token(&replay_ok(
        &[&["--connect", &addr], &head[..], &["--park"]].concat(),
    ));
    let token_control = park_token(&replay_ok(
        &[&["--connect", &addr], &head[..], &["--park"]].concat(),
    ));

    // Control: resume on the SAME server process (no crash) and stream a
    // tail. Its per-batch totals are the no-crash reference.
    let tail = ["--bench", "jpeg", "--len", "8000"];
    let control = streamed_line(&replay_ok(
        &[&["--connect", &addr, "--resume", &token_control], &tail[..]].concat(),
    ));

    // kill -9: no drain, no flush, no goodbye.
    first.kill().expect("SIGKILL server");
    let _ = first.wait();

    // The store on disk still holds exactly the un-resumed session (the
    // control session's record was removed durably when it was taken).
    let out = cira(&["store", "inspect", store_file.to_str().unwrap(), "--decode"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("live records: 1"), "{text}");
    assert!(text.contains(&token_crash), "{text}");
    assert!(text.contains("20000 branches"), "{text}");

    // A fresh process on the same directory recovers the park index; the
    // resumed session must behave exactly like the un-crashed control.
    let (mut second, port) = start_server_with(&temp_path("park9-b.port"), &park_flags);
    let addr = format!("127.0.0.1:{port}");
    let crashed = streamed_line(&replay_ok(
        &[&["--connect", &addr, "--resume", &token_crash], &tail[..]].concat(),
    ));
    assert_eq!(
        crashed, control,
        "post-crash resume diverged from the no-crash control"
    );

    second.kill().expect("stop server");
    let _ = second.wait();
    let _ = std::fs::remove_dir_all(&park_dir);
}

#[test]
fn sweep_prints_operating_points() {
    let out = cira(&["sweep", "--bench", "jpeg", "--len", "10000", "--max", "4"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("threshold") && text.contains("PVN"), "{text}");
    // max=4 sweep: header + mechanism line + 6 threshold rows
    assert!(text.lines().count() >= 8);
}

#[test]
fn mix_interleaves_benchmarks() {
    let path = temp_path("mix.cirt");
    let out = cira(&[
        "mix",
        "--bench",
        "gcc",
        "--bench",
        "jpeg",
        "--len",
        "3000",
        "--quantum",
        "500",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("wrote 6000 records"));
    let info = cira(&["info", path.to_str().unwrap()]);
    assert!(stdout(&info).contains("records:         6000"));
}

#[test]
fn mix_requires_two_benchmarks() {
    let out = cira(&["mix", "--bench", "gcc", "--out", "/tmp/x.cirt"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("two"));
}

#[test]
fn help_shows_usage() {
    let out = cira(&["help"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("USAGE: cira"));
    // Rev 1.5 flight-recorder surfaces must be discoverable from --help.
    assert!(text.contains("--trace]"), "{text}");
    assert!(text.contains("--trace-capacity"), "{text}");
    assert!(text.contains("trace dump"), "{text}");
}

#[test]
fn trace_dump_pulls_chrome_json_from_a_traced_server() {
    let port_file = temp_path("trace.port");
    let (mut server, port) = start_server_with(&port_file, &["--trace", "--trace-capacity", "8192"]);
    let addr = format!("127.0.0.1:{port}");

    // Drive a session through the full lifecycle so the recorder has
    // accept/parse/score/write events to dump.
    replay_ok(&["--connect", &addr, "--bench", "jpeg", "--len", "20000"]);

    let out_path = temp_path("dump.trace.json");
    let out = cira(&[
        "trace",
        "dump",
        "--connect",
        &addr,
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let json = std::fs::read_to_string(&out_path).unwrap();
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'), "{json}");
    assert!(json.contains("\"traceEvents\""), "{json}");
    for stage in ["accept", "parse", "score", "complete", "write_flush"] {
        assert!(json.contains(&format!("\"{stage}\"")), "missing {stage} in dump");
    }

    // Without --out the JSON goes to stdout.
    let out = cira(&["trace", "dump", "--connect", &addr]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("\"traceEvents\""));

    server.kill().expect("stop server");
    let _ = server.wait();
}
