//! Lock-free metrics: counters, gauges, log2 histograms, and a registry
//! that renders the Prometheus text exposition format.
//!
//! All instruments update with relaxed atomics — they are observational
//! and never used to synchronize data, so the hot-path cost is a handful
//! of uncontended `fetch_add`s. Snapshots are taken field-by-field and
//! are therefore not a consistent cut across instruments; within one
//! histogram the `count`/`sum` pair can be momentarily ahead of the
//! buckets, which scrapers tolerate by design.
//!
//! A [`Registry`] does not own instruments. It owns *closures* that read
//! them, so any struct with plain `Counter`/`Histogram` fields (e.g.
//! `ServerMetrics`) registers itself by capturing an `Arc`/`&'static`
//! handle — no wrapper types, no global state.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of histogram buckets: `le=1`, `le=2^i` for `i = 1..=31`, `+Inf`.
pub const BUCKETS: usize = 33;

/// Index of the `+Inf` overflow bucket.
pub const INF_BUCKET: usize = BUCKETS - 1;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds (possibly negative) `d`.
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The bucket an observation of `v` falls into.
///
/// Bucket 0 holds `v <= 1`; bucket `i` (for `1 <= i <= 31`) holds
/// `2^(i-1) < v <= 2^i`; bucket 32 is `+Inf`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        ((64 - (v - 1).leading_zeros()) as usize).min(INF_BUCKET)
    }
}

/// The inclusive upper bound (`le`) of bucket `i`; `None` means `+Inf`.
#[inline]
pub fn bucket_bound(i: usize) -> Option<u64> {
    if i >= INF_BUCKET {
        None
    } else if i == 0 {
        Some(1)
    } else {
        Some(1u64 << i)
    }
}

/// A fixed-bucket log2 histogram of `u64` observations.
///
/// Thirty-three atomic buckets with power-of-two bounds cover the full
/// `u64` range, which is plenty of resolution for latencies in
/// microseconds or batch sizes in records while keeping `record` at two
/// relaxed `fetch_add`s.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            // `AtomicU64` is not `Copy`; inline-const repeats the initializer.
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        let mut count = 0u64;
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
            count += *out;
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
            count,
        }
    }
}

/// A mergeable, point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (not cumulative).
    pub buckets: [u64; BUCKETS],
    /// Sum of all observed values.
    pub sum: u64,
    /// Total number of observations.
    pub count: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            sum: 0,
            count: 0,
        }
    }
}

impl HistogramSnapshot {
    /// The element-wise sum of two snapshots. Associative and
    /// commutative, so per-shard histograms can be folded in any order.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = *self;
        for (a, b) in out.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        // `Histogram::record` accumulates `sum` with a wrapping
        // `fetch_add`; merging must wrap identically to stay associative.
        out.sum = out.sum.wrapping_add(other.sum);
        out.count += other.count;
        out
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// within the bucket containing the target rank, mirroring how
    /// Prometheus' `histogram_quantile` reads the same buckets. Returns
    /// 0 for an empty snapshot; ranks landing in the `+Inf` bucket clamp
    /// to its lower bound.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let next = cumulative + n;
            if (next as f64) >= rank {
                let lower = if i == 0 { 0.0 } else { (1u64 << (i - 1)) as f64 };
                let upper = match bucket_bound(i) {
                    Some(b) => b as f64,
                    None => return lower,
                };
                let into = (rank - cumulative as f64).max(0.0) / n as f64;
                return lower + (upper - lower) * into;
            }
            cumulative = next;
        }
        match bucket_bound(INF_BUCKET - 1) {
            Some(b) => b as f64,
            None => 0.0,
        }
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

type CounterFn = Box<dyn Fn() -> u64 + Send + Sync>;
type GaugeFn = Box<dyn Fn() -> i64 + Send + Sync>;
type HistogramFn = Box<dyn Fn() -> HistogramSnapshot + Send + Sync>;

enum Value {
    Counter(CounterFn),
    Gauge(GaugeFn),
    Histogram(HistogramFn),
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Counter(_) => "counter",
            Value::Gauge(_) => "gauge",
            Value::Histogram(_) => "histogram",
        }
    }
}

struct Series {
    labels: Vec<(String, String)>,
    value: Value,
}

struct Family {
    name: String,
    help: String,
    series: Vec<Series>,
}

/// A named collection of metric families rendered as Prometheus text.
///
/// Registration takes closures, not instrument references, so callers
/// register existing structs by capturing a handle:
///
/// ```
/// use std::sync::Arc;
/// use cira_obs::{Counter, Registry};
///
/// #[derive(Default)]
/// struct Stats { requests: Counter }
///
/// let stats = Arc::new(Stats::default());
/// let reg = Registry::new("cira");
/// let s = Arc::clone(&stats);
/// reg.counter("requests_total", "Requests handled", move || s.requests.get());
/// stats.requests.inc();
/// assert!(reg.render().contains("cira_requests_total 1"));
/// ```
pub struct Registry {
    prefix: String,
    families: Mutex<Vec<Family>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("Registry")
            .field("prefix", &self.prefix)
            .field("families", &families.len())
            .finish()
    }
}

impl Registry {
    /// A registry whose metric names are `<prefix>_<name>` (empty prefix
    /// = bare names).
    pub fn new(prefix: &str) -> Self {
        Registry {
            prefix: prefix.to_string(),
            families: Mutex::new(Vec::new()),
        }
    }

    fn full_name(&self, name: &str) -> String {
        if self.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}_{}", self.prefix, name)
        }
    }

    fn push(&self, name: &str, help: &str, labels: &[(&str, &str)], value: Value) {
        let name = self.full_name(name);
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(fam) = families.iter_mut().find(|f| f.name == name) {
            assert_eq!(
                fam.series[0].value.kind(),
                value.kind(),
                "metric family {name} registered with conflicting types"
            );
            fam.series.push(Series { labels, value });
        } else {
            families.push(Family {
                name,
                help: help.to_string(),
                series: vec![Series { labels, value }],
            });
        }
    }

    /// Registers an unlabeled counter read through `f`.
    pub fn counter(&self, name: &str, help: &str, f: impl Fn() -> u64 + Send + Sync + 'static) {
        self.push(name, help, &[], Value::Counter(Box::new(f)));
    }

    /// Registers a counter series with labels; repeat calls with the same
    /// `name` add series to one family.
    pub fn counter_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.push(name, help, labels, Value::Counter(Box::new(f)));
    }

    /// Registers an unlabeled gauge read through `f`.
    pub fn gauge(&self, name: &str, help: &str, f: impl Fn() -> i64 + Send + Sync + 'static) {
        self.push(name, help, &[], Value::Gauge(Box::new(f)));
    }

    /// Registers a gauge series with labels; repeat calls with the same
    /// `name` add series to one family.
    pub fn gauge_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> i64 + Send + Sync + 'static,
    ) {
        self.push(name, help, labels, Value::Gauge(Box::new(f)));
    }

    /// Registers an unlabeled histogram snapshotted through `f`.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        f: impl Fn() -> HistogramSnapshot + Send + Sync + 'static,
    ) {
        self.push(name, help, &[], Value::Histogram(Box::new(f)));
    }

    /// Renders every family in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` and `# TYPE` once per family, histogram
    /// buckets cumulative with an explicit `+Inf`.
    pub fn render(&self) -> String {
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::with_capacity(families.len() * 128);
        for fam in families.iter() {
            let _ = writeln!(out, "# HELP {} {}", fam.name, escape_help(&fam.help));
            let _ = writeln!(out, "# TYPE {} {}", fam.name, fam.series[0].value.kind());
            for series in &fam.series {
                render_series(&mut out, &fam.name, series);
            }
        }
        out
    }
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Renders a label set as `{k="v",...}`; `extra` appends one more pair
/// (used for histogram `le`). Empty sets render as nothing.
fn render_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
}

fn render_series(out: &mut String, name: &str, series: &Series) {
    match &series.value {
        Value::Counter(f) => {
            out.push_str(name);
            render_labels(out, &series.labels, None);
            let _ = writeln!(out, " {}", f());
        }
        Value::Gauge(f) => {
            out.push_str(name);
            render_labels(out, &series.labels, None);
            let _ = writeln!(out, " {}", f());
        }
        Value::Histogram(f) => {
            let snap = f();
            let mut cumulative = 0u64;
            for (i, n) in snap.buckets.iter().enumerate() {
                cumulative += n;
                let bound;
                let le = match bucket_bound(i) {
                    Some(b) => {
                        bound = b.to_string();
                        bound.as_str()
                    }
                    None => "+Inf",
                };
                let _ = write!(out, "{name}_bucket");
                render_labels(out, &series.labels, Some(("le", le)));
                let _ = writeln!(out, " {cumulative}");
            }
            let _ = write!(out, "{name}_sum");
            render_labels(out, &series.labels, None);
            let _ = writeln!(out, " {}", snap.sum);
            let _ = write!(out, "{name}_count");
            render_labels(out, &series.labels, None);
            let _ = writeln!(out, " {}", snap.count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.dec();
        g.add(-2);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn bucket_boundaries_are_inclusive_upper() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 20), 20);
        assert_eq!(bucket_index((1 << 20) + 1), 21);
        assert_eq!(bucket_index(u64::from(u32::MAX)), INF_BUCKET);
        assert_eq!(bucket_index(1 << 31), 31);
        assert_eq!(bucket_index(u64::MAX), INF_BUCKET);
        // Every bucket's bound maps back into that bucket.
        for i in 0..INF_BUCKET {
            let b = bucket_bound(i).unwrap();
            assert_eq!(bucket_index(b), i, "bound {b} of bucket {i}");
            assert_eq!(bucket_index(b + 1), i + 1, "bound {b}+1 of bucket {i}");
        }
        assert_eq!(bucket_bound(INF_BUCKET), None);
    }

    #[test]
    fn histogram_records_and_sums() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1006);
        assert_eq!(s.buckets[0], 2); // 0 and 1
        assert_eq!(s.buckets[1], 1); // 2
        assert_eq!(s.buckets[2], 1); // 3
        assert_eq!(s.buckets[10], 1); // 1000 in (512, 1024]
    }

    #[test]
    fn snapshot_merge_is_associative_and_commutative() {
        let mk = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let a = mk(&[1, 5, 9]);
        let b = mk(&[2, 1024, u64::MAX]);
        let c = mk(&[0, 0, 77, 300]);
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        assert_eq!(a.merge(&b), b.merge(&a));
        let all = a.merge(&b).merge(&c);
        assert_eq!(all.count, 10);
        assert_eq!(all.sum, (1u64 + 5 + 9 + 2 + 1024 + 77 + 300).wrapping_add(u64::MAX));
    }

    #[test]
    fn snapshot_merge_wraps_sum_like_the_recorder() {
        // `Histogram::record` accumulates `sum` with a wrapping
        // `fetch_add`, so per-shard sums that individually overflowed
        // must merge with the same wrap to equal one histogram that saw
        // every observation.
        let whole = Histogram::new();
        whole.record(u64::MAX);
        whole.record(u64::MAX);
        whole.record(3);
        let whole = whole.snapshot();
        assert_eq!(whole.sum, u64::MAX.wrapping_add(u64::MAX).wrapping_add(3));

        let part = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let a = part(&[u64::MAX]);
        let b = part(&[u64::MAX, 3]);
        assert_eq!(a.merge(&b), whole);
        assert_eq!(b.merge(&a), whole);
        // Associativity holds across the wrap point itself.
        let c = part(&[u64::MAX - 1]);
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        // Only `sum` is modular; counts and buckets add exactly.
        assert_eq!(whole.count, 3);
        assert_eq!(whole.buckets[INF_BUCKET], 2);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new();
        // 100 observations uniform in (512, 1024] — all in bucket 10.
        for i in 0..100 {
            h.record(513 + i * 5);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.5);
        assert!((512.0..=1024.0).contains(&p50), "p50 = {p50}");
        assert!(s.quantile(0.99) >= p50);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0.0);
        // A mass at +Inf clamps to the last finite bound.
        let big = Histogram::new();
        big.record(u64::MAX);
        assert_eq!(big.snapshot().quantile(0.99), (1u64 << 31) as f64);
    }

    #[test]
    fn registry_renders_families_once() {
        let reg = Registry::new("t");
        reg.counter("hits_total", "Hits", || 3);
        reg.gauge_with("depth", "Queue depth", &[("worker", "0")], || 2);
        reg.gauge_with("depth", "Queue depth", &[("worker", "1")], || 5);
        let h = std::sync::Arc::new(Histogram::new());
        h.record(3);
        let hh = std::sync::Arc::clone(&h);
        reg.histogram("lat_us", "Latency", move || hh.snapshot());
        let text = reg.render();
        assert_eq!(text.matches("# TYPE t_depth gauge").count(), 1);
        assert!(text.contains("t_hits_total 3"));
        assert!(text.contains("t_depth{worker=\"0\"} 2"));
        assert!(text.contains("t_depth{worker=\"1\"} 5"));
        assert!(text.contains("t_lat_us_bucket{le=\"2\"} 0"));
        assert!(text.contains("t_lat_us_bucket{le=\"4\"} 1"));
        assert!(text.contains("t_lat_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("t_lat_us_sum 3"));
        assert!(text.contains("t_lat_us_count 1"));
    }
}
