//! Flight-recorder tracing: per-thread lock-free ring buffers of compact
//! span events, exported as Chrome trace-event JSON.
//!
//! Aggregate metrics ([`crate::metrics`]) answer *how much*; this module
//! answers *where the time went* for one request. Every instrumented
//! thread owns a fixed-capacity SPSC ring of binary span events (48 bytes
//! each: timestamps, trace/span ids, stage, shard, session token). The
//! producer is the owning thread; the single consumer is whoever dumps —
//! an HTTP `GET /trace`, a `TRACE_DUMP` wire frame, a `SIGUSR1` handler,
//! or an error-path flight dump. The ring **overwrites** its oldest slot
//! when full (that is the flight-recorder contract: the newest window is
//! always retained) and counts what it overwrote, so a dump always reports
//! exactly how much history it lost.
//!
//! # Cost model
//!
//! * **Compiled in, disabled** (the default): every instrumentation site
//!   is gated on [`enabled`] — one relaxed atomic load and a predictable
//!   branch, the same discipline as [`crate::log`] levels. The
//!   `obs_overhead` bench records the measured cost in `BENCH_obs.json`.
//! * **Enabled**: one monotonic clock read per span edge plus six relaxed
//!   atomic stores into the thread's own cache-resident ring. No locks,
//!   no allocation, no cross-thread traffic on the hot path.
//!
//! # Consistency
//!
//! Dumps run concurrently with producers. The reader snapshots a ring by
//! reading `head`, copying the retained window, then re-reading `head`:
//! any slot the producer could have been rewriting during the copy is
//! discarded. Events are therefore never torn — a dump only loses the
//! handful of oldest events that were being overwritten while it ran.
//!
//! # Export
//!
//! [`dump_chrome_json`] renders the merged, time-sorted event set in the
//! Chrome trace-event format, loadable in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev): complete (`"X"`) events for
//! spans, instant (`"i"`) events for points, and `thread_name` metadata
//! rows naming each ring.
//!
//! Dumps leave the process over unauthenticated surfaces (`GET /trace`,
//! the pre-session `TRACE_DUMP` frame), and the raw session resume token
//! is the sole `RESUME` credential — so exports never carry it. The
//! `token` arg in the JSON is [`export_token`]: a per-process keyed
//! one-way hash, stable within a process (every event of one session
//! still correlates) but useless against `RESUME`.

use std::cell::OnceCell;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// `u64` words per ring slot (one encoded event).
const WORDS: usize = 6;

/// Ring capacity (events per thread) used when tracing is switched on
/// without an explicit [`init`].
pub const DEFAULT_CAPACITY: usize = 4096;

/// Shard value recorded for events emitted outside any shard context.
pub const NO_SHARD: u16 = u16::MAX;

/// Lifecycle stage an event belongs to. The discriminants are part of the
/// in-ring encoding; [`Stage::as_str`] is the Chrome event name.
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// A connection was accepted.
    Accept = 0,
    /// A complete frame was parsed out of a connection's read buffer.
    Parse = 1,
    /// A message crossed a shard inbox (hand-off, completion post).
    Inbox = 2,
    /// A batch run was checked out of its connection onto the pool.
    Checkout = 3,
    /// Kernel scoring of one batch run on a worker thread.
    Score = 4,
    /// One kernel chunk inside a scoring call.
    Chunk = 5,
    /// A finished run landed back on its owning shard.
    Complete = 6,
    /// A frame was serialized onto a connection's write queue.
    WriteQueue = 7,
    /// A write-queue flush pushed bytes into the socket.
    WriteFlush = 8,
    /// A connection migrated to its session's owning shard.
    Migrate = 9,
    /// A parked session was checkpointed to the disk tier.
    ParkSpill = 10,
    /// A parked session was loaded back from the disk tier.
    ParkLoad = 11,
    /// A store page was read.
    PageRead = 12,
    /// A store page was written.
    PageWrite = 13,
    /// The store file was fsynced.
    Fsync = 14,
    /// A fault the flight recorder wants in the timeline (protocol
    /// error, write-deadline miss).
    Fault = 15,
}

impl Stage {
    /// The Chrome trace event name for this stage.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Accept => "accept",
            Stage::Parse => "parse",
            Stage::Inbox => "inbox",
            Stage::Checkout => "checkout",
            Stage::Score => "score",
            Stage::Chunk => "chunk",
            Stage::Complete => "complete",
            Stage::WriteQueue => "write_queue",
            Stage::WriteFlush => "write_flush",
            Stage::Migrate => "migrate",
            Stage::ParkSpill => "park_spill",
            Stage::ParkLoad => "park_load",
            Stage::PageRead => "page_read",
            Stage::PageWrite => "page_write",
            Stage::Fsync => "fsync",
            Stage::Fault => "fault",
        }
    }

    fn from_u8(v: u8) -> Stage {
        match v {
            0 => Stage::Accept,
            1 => Stage::Parse,
            2 => Stage::Inbox,
            3 => Stage::Checkout,
            4 => Stage::Score,
            5 => Stage::Chunk,
            6 => Stage::Complete,
            7 => Stage::WriteQueue,
            8 => Stage::WriteFlush,
            9 => Stage::Migrate,
            10 => Stage::ParkSpill,
            11 => Stage::ParkLoad,
            12 => Stage::PageRead,
            13 => Stage::PageWrite,
            14 => Stage::Fsync,
            _ => Stage::Fault,
        }
    }
}

/// One decoded event, as returned by [`collect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Nanoseconds since the trace epoch (process tracer creation).
    pub start_ns: u64,
    /// Span duration in nanoseconds; `0` marks an instant event.
    pub dur_ns: u64,
    /// Request identity the event belongs to (connection id on the serve
    /// path); `0` when unattributed.
    pub trace_id: u64,
    /// Session resume token, or `0` when no session is attached yet.
    pub token: u64,
    /// Stage-specific payload (records in a batch, page index, bytes).
    pub aux: u64,
    /// Process-unique span id.
    pub span_id: u32,
    /// Lifecycle stage.
    pub stage: Stage,
    /// Shard the event was attributed to, or [`NO_SHARD`].
    pub shard: u16,
    /// Chrome `tid` of the ring that recorded the event.
    pub tid: u16,
}

/// One thread's event ring. Written only by its owning thread; read by
/// dumpers under the seqlock-style discipline described in the module
/// docs. Slots are `AtomicU64` words so concurrent reads of a slot being
/// rewritten are defined (and then discarded by the index check).
#[derive(Debug)]
struct Ring {
    slots: Box<[AtomicU64]>,
    /// Power-of-two event capacity.
    capacity: u64,
    /// Events ever published; `head % capacity` is the next write slot.
    head: AtomicU64,
    /// Chrome `tid` and thread-name metadata for exports.
    tid: u16,
    label: String,
}

impl Ring {
    fn new(capacity: u64, tid: u16, label: String) -> Ring {
        let words = (capacity as usize) * WORDS;
        let mut slots = Vec::with_capacity(words);
        slots.resize_with(words, || AtomicU64::new(0));
        Ring {
            slots: slots.into_boxed_slice(),
            capacity,
            head: AtomicU64::new(0),
            tid,
            label,
        }
    }

    /// Publishes one event (single-producer: only the owning thread).
    fn push(&self, words: &[u64; WORDS]) {
        let head = self.head.load(Ordering::Relaxed);
        let base = ((head & (self.capacity - 1)) as usize) * WORDS;
        for (i, w) in words.iter().enumerate() {
            self.slots[base + i].store(*w, Ordering::Relaxed);
        }
        // Publish after the slot words: a reader that observes index
        // `head` retained has observed the complete slot.
        self.head.store(head + 1, Ordering::Release);
    }

    /// Events overwritten so far (the wrap-counted drop account).
    fn dropped(&self) -> u64 {
        self.head.load(Ordering::Relaxed).saturating_sub(self.capacity)
    }

    /// Copies the retained window, discarding any slot the producer
    /// could have been rewriting mid-copy.
    fn collect_into(&self, out: &mut Vec<SpanEvent>) {
        let h1 = self.head.load(Ordering::Acquire);
        let lo = h1.saturating_sub(self.capacity);
        let mut staged: Vec<(u64, [u64; WORDS])> = Vec::with_capacity((h1 - lo) as usize);
        for idx in lo..h1 {
            let base = ((idx & (self.capacity - 1)) as usize) * WORDS;
            let mut w = [0u64; WORDS];
            for (i, word) in w.iter_mut().enumerate() {
                *word = self.slots[base + i].load(Ordering::Relaxed);
            }
            staged.push((idx, w));
        }
        // Seqlock reader fence: the relaxed slot loads above must not be
        // reordered past the head re-read (an Acquire *load* only orders
        // later accesses; on weakly-ordered CPUs a torn slot rewritten
        // after the check could otherwise pass validation).
        std::sync::atomic::fence(Ordering::Acquire);
        let h2 = self.head.load(Ordering::Acquire);
        for (idx, w) in staged {
            // The producer may have been writing any index in `h1..=h2`
            // during the copy; those rewrite slots `idx` with
            // `idx + capacity <= h2`. Everything newer is stable.
            if idx + self.capacity > h2 {
                out.push(decode(&w, self.tid));
            }
        }
    }
}

fn encode(ev: &SpanEvent) -> [u64; WORDS] {
    [
        ev.start_ns,
        ev.dur_ns,
        ev.trace_id,
        ev.token,
        ev.aux,
        u64::from(ev.span_id) | (u64::from(ev.stage as u8) << 32) | (u64::from(ev.shard) << 48),
    ]
}

fn decode(w: &[u64; WORDS], tid: u16) -> SpanEvent {
    SpanEvent {
        start_ns: w[0],
        dur_ns: w[1],
        trace_id: w[2],
        token: w[3],
        aux: w[4],
        span_id: w[5] as u32,
        stage: Stage::from_u8((w[5] >> 32) as u8),
        shard: (w[5] >> 48) as u16,
        tid,
    }
}

/// The process-wide tracer: the ring registry and the trace clock epoch.
#[derive(Debug)]
struct Tracer {
    rings: Mutex<Vec<Arc<Ring>>>,
    capacity: u64,
    epoch: Instant,
    next_span: AtomicU64,
    next_tid: AtomicU64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static TRACER: OnceLock<Tracer> = OnceLock::new();

thread_local! {
    /// This thread's ring, registered lazily on first emit.
    static LOCAL_RING: OnceCell<Arc<Ring>> = const { OnceCell::new() };
    /// Ambient request attribution `(trace_id, token, shard)`, set by the
    /// serve path around work it farms out (scoring, park/store I/O) so
    /// lower layers attribute events without API threading.
    static CTX: std::cell::Cell<(u64, u64, u16)> = const { std::cell::Cell::new((0, 0, NO_SHARD)) };
}

/// Creates the process tracer with `capacity` events per thread ring
/// (rounded up to a power of two, minimum 16). Idempotent: the first call
/// wins; later calls (and [`set_enabled`]) reuse the existing tracer.
/// Recording stays off until [`set_enabled`]`(true)`.
pub fn init(capacity: usize) {
    TRACER.get_or_init(|| Tracer {
        rings: Mutex::new(Vec::new()),
        capacity: capacity.max(16).next_power_of_two() as u64,
        epoch: Instant::now(),
        next_span: AtomicU64::new(1),
        next_tid: AtomicU64::new(0),
    });
}

/// Whether the tracer exists (rings may hold events even while disabled).
pub fn is_initialized() -> bool {
    TRACER.get().is_some()
}

/// Turns event recording on or off. Enabling without a prior [`init`]
/// initializes at [`DEFAULT_CAPACITY`].
pub fn set_enabled(on: bool) {
    if on {
        init(DEFAULT_CAPACITY);
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// The disabled gate every instrumentation site checks first: one relaxed
/// atomic load, mirroring [`crate::log::enabled`].
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Nanoseconds since the trace epoch (`0` before [`init`]).
#[inline]
pub fn now_ns() -> u64 {
    match TRACER.get() {
        Some(t) => t.epoch.elapsed().as_nanos() as u64,
        None => 0,
    }
}

/// A fresh process-unique span id.
pub fn next_span_id() -> u32 {
    match TRACER.get() {
        Some(t) => t.next_span.fetch_add(1, Ordering::Relaxed) as u32,
        None => 0,
    }
}

/// Registers the calling thread's ring under `label` with Chrome `tid`
/// `tid_hint` (shard threads pass their shard index so trace rows line up
/// with shard numbering). Without this, the ring self-registers on first
/// emit using the thread's name and an allocated tid.
pub fn register_thread(label: &str, tid_hint: Option<u16>) {
    let Some(t) = TRACER.get() else { return };
    let label = label.to_owned();
    LOCAL_RING.with(|cell| {
        cell.get_or_init(|| t.new_ring(label, tid_hint));
    });
}

/// Chrome `tid` base for lazily-registered rings: the upper half of the
/// `u16` range, unreachable by shard tid hints (shard indices are small).
/// Allocation saturates at `u16::MAX` rather than wrapping — colliding
/// tids would merge unrelated threads into one Perfetto row, and a
/// process with 32k+ traced threads has bigger problems.
const LAZY_TID_BASE: u16 = 0x8000;

impl Tracer {
    fn new_ring(&self, label: String, tid_hint: Option<u16>) -> Arc<Ring> {
        let tid = tid_hint.unwrap_or_else(|| {
            let n = self.next_tid.fetch_add(1, Ordering::Relaxed);
            LAZY_TID_BASE.saturating_add(n.min(u64::from(u16::MAX - LAZY_TID_BASE)) as u16)
        });
        let ring = Arc::new(Ring::new(self.capacity, tid, label));
        self.rings
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&ring));
        ring
    }
}

fn emit(ev: &SpanEvent) {
    let Some(t) = TRACER.get() else { return };
    let words = encode(ev);
    LOCAL_RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let label = std::thread::current()
                .name()
                .map(str::to_owned)
                .unwrap_or_else(|| "unnamed".to_owned());
            t.new_ring(label, None)
        });
        ring.push(&words);
    });
}

/// Sets the calling thread's ambient request attribution; picked up by
/// [`Span::begin_ctx`]/[`instant_ctx`] in layers that don't know the
/// request (engine chunks, store page I/O).
pub fn set_ctx(trace_id: u64, token: u64, shard: u16) {
    CTX.with(|c| c.set((trace_id, token, shard)));
}

/// Clears the ambient attribution set by [`set_ctx`].
pub fn clear_ctx() {
    CTX.with(|c| c.set((0, 0, NO_SHARD)));
}

/// The calling thread's ambient `(trace_id, token, shard)` attribution.
pub fn ctx() -> (u64, u64, u16) {
    CTX.with(|c| c.get())
}

/// An in-progress span. Created armed only while tracing is enabled;
/// [`end`](Span::end) on a disarmed span is a branch and nothing else.
/// Dropping a span without ending it records nothing by design (error
/// paths bail without cleanup obligations).
#[derive(Debug)]
#[must_use = "a span records only when ended"]
pub struct Span {
    start_ns: u64,
    trace_id: u64,
    token: u64,
    span_id: u32,
    stage: Stage,
    shard: u16,
    armed: bool,
}

impl Span {
    /// Opens a span with explicit attribution. One relaxed load when
    /// tracing is disabled.
    #[inline]
    pub fn begin(stage: Stage, trace_id: u64, token: u64, shard: u16) -> Span {
        if !enabled() {
            return Span {
                start_ns: 0,
                trace_id: 0,
                token: 0,
                span_id: 0,
                stage,
                shard: 0,
                armed: false,
            };
        }
        Span {
            start_ns: now_ns(),
            trace_id,
            token,
            span_id: next_span_id(),
            stage,
            shard,
            armed: true,
        }
    }

    /// Opens a span attributed from the thread's ambient [`ctx`].
    #[inline]
    pub fn begin_ctx(stage: Stage) -> Span {
        if !enabled() {
            return Span::begin(stage, 0, 0, 0); // disarmed: gate re-checked
        }
        let (trace_id, token, shard) = ctx();
        Span::begin(stage, trace_id, token, shard)
    }

    /// Closes the span, recording its duration.
    #[inline]
    pub fn end(self) {
        self.end_with(0);
    }

    /// Closes the span with a stage-specific payload (batch records,
    /// page index, bytes flushed).
    #[inline]
    pub fn end_with(self, aux: u64) {
        if !self.armed {
            return;
        }
        let end = now_ns();
        emit(&SpanEvent {
            start_ns: self.start_ns,
            dur_ns: end.saturating_sub(self.start_ns).max(1),
            trace_id: self.trace_id,
            token: self.token,
            aux,
            span_id: self.span_id,
            stage: self.stage,
            shard: self.shard,
            tid: 0,
        });
    }
}

/// Records an instant event with explicit attribution.
#[inline]
pub fn instant(stage: Stage, trace_id: u64, token: u64, shard: u16, aux: u64) {
    if !enabled() {
        return;
    }
    emit(&SpanEvent {
        start_ns: now_ns(),
        dur_ns: 0,
        trace_id,
        token,
        aux,
        span_id: next_span_id(),
        stage,
        shard,
        tid: 0,
    });
}

/// Records an instant event attributed from the thread's ambient [`ctx`].
#[inline]
pub fn instant_ctx(stage: Stage, aux: u64) {
    if !enabled() {
        return;
    }
    let (trace_id, token, shard) = ctx();
    instant(stage, trace_id, token, shard, aux);
}

/// Recorder totals: what is retained and what the wrap overwrote.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Events ever recorded across all rings.
    pub recorded: u64,
    /// Events overwritten by ring wrap (lost to dumps).
    pub dropped: u64,
    /// Registered rings (instrumented threads seen so far).
    pub rings: usize,
}

/// Aggregated recorder totals across every registered ring.
pub fn stats() -> TraceStats {
    let Some(t) = TRACER.get() else {
        return TraceStats::default();
    };
    let rings = t.rings.lock().unwrap_or_else(|e| e.into_inner());
    let mut out = TraceStats {
        rings: rings.len(),
        ..TraceStats::default()
    };
    for ring in rings.iter() {
        out.recorded += ring.head.load(Ordering::Relaxed);
        out.dropped += ring.dropped();
    }
    out
}

/// Collects the retained events from every ring, newest windows merged
/// and sorted by start time. `window_ns = Some(w)` keeps only events
/// ending within the last `w` nanoseconds.
pub fn collect(window_ns: Option<u64>) -> Vec<SpanEvent> {
    let Some(t) = TRACER.get() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    {
        let rings = t.rings.lock().unwrap_or_else(|e| e.into_inner());
        for ring in rings.iter() {
            ring.collect_into(&mut out);
        }
    }
    if let Some(w) = window_ns {
        let cutoff = now_ns().saturating_sub(w);
        out.retain(|ev| ev.start_ns + ev.dur_ns >= cutoff);
    }
    out.sort_by_key(|ev| (ev.start_ns, ev.span_id));
    out
}

/// splitmix64 finalizer: the keyed one-way mix behind [`export_token`].
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-process export key: wall clock, pid, and static-address entropy,
/// minted once and never exported.
fn export_key() -> u64 {
    static KEY: OnceLock<u64> = OnceLock::new();
    *KEY.get_or_init(|| {
        let wall = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let aslr = &KEY as *const _ as u64;
        splitmix64(wall ^ aslr.rotate_left(32) ^ u64::from(std::process::id()).rotate_left(17)) | 1
    })
}

/// The session-token value dumps export in place of the raw resume
/// token. Raw tokens are the sole `RESUME` credential and dumps are
/// served to any client that can reach the port (`GET /trace`, the
/// pre-session `TRACE_DUMP` frame), so exports carry a keyed one-way
/// hash instead: stable within a process — every event of one session
/// maps to the same value, preserving correlation — but unusable to
/// hijack a parked session. `0` (no session attached) stays `0`.
pub fn export_token(token: u64) -> u64 {
    if token == 0 {
        return 0;
    }
    splitmix64(token ^ export_key())
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the retained events as a Chrome trace-event JSON document
/// (object form, `traceEvents` array), loadable in `chrome://tracing` and
/// Perfetto. Always valid JSON, even before [`init`] (empty event list).
/// Session tokens are exported through [`export_token`] — raw resume
/// credentials never leave the process.
pub fn dump_chrome_json(window_ns: Option<u64>) -> String {
    let events = collect(window_ns);
    let s = stats();
    let mut out = String::with_capacity(events.len() * 120 + 512);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    {
        let push = |s: &mut String, first: &mut bool, line: String| {
            if !*first {
                s.push(',');
            }
            *first = false;
            s.push('\n');
            s.push_str(&line);
        };
        push(
            &mut out,
            &mut first,
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"cira\"}}"
                .to_owned(),
        );
        if let Some(t) = TRACER.get() {
            let rings = t.rings.lock().unwrap_or_else(|e| e.into_inner());
            for ring in rings.iter() {
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                         \"args\":{{\"name\":\"{}\"}}}}",
                        ring.tid,
                        json_escape(&ring.label)
                    ),
                );
            }
        }
        for ev in &events {
            let ts = ev.start_ns as f64 / 1000.0;
            let common = format!(
                "\"cat\":\"cira\",\"ts\":{ts:.3},\"pid\":1,\"tid\":{},\
                 \"args\":{{\"trace\":{},\"token\":{},\"span\":{},\"aux\":{},\"shard\":{}}}",
                ev.tid,
                ev.trace_id,
                export_token(ev.token),
                ev.span_id,
                ev.aux,
                ev.shard,
            );
            let line = if ev.dur_ns > 0 {
                format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"dur\":{:.3},{common}}}",
                    ev.stage.as_str(),
                    ev.dur_ns as f64 / 1000.0,
                )
            } else {
                format!(
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",{common}}}",
                    ev.stage.as_str(),
                )
            };
            push(&mut out, &mut first, line);
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{");
    out.push_str(&format!(
        "\"recorded\":{},\"dropped\":{},\"rings\":{}}}}}\n",
        s.recorded, s.dropped, s.rings
    ));
    out
}

/// Dump-file sequence number (keeps concurrent dump names unique).
static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);
/// Trace-epoch ns of the last throttled flight dump.
static LAST_FLIGHT_NS: AtomicU64 = AtomicU64::new(0);
/// Minimum spacing between throttled flight dumps.
const FLIGHT_GAP_NS: u64 = 1_000_000_000;

/// Writes the full retained trace to `$CIRA_TRACE_DIR` as
/// `cira-trace-<pid>-<reason>-<seq>.json`. Returns the path written, or
/// `None` when the env var is unset, tracing is off, or the write failed
/// (logged, never fatal).
pub fn dump_to_dir(reason: &str) -> Option<PathBuf> {
    if !is_initialized() {
        return None;
    }
    let dir = std::env::var_os("CIRA_TRACE_DIR")?;
    let seq = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let reason: String = reason
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let path = PathBuf::from(dir).join(format!(
        "cira-trace-{}-{reason}-{seq}.json",
        std::process::id()
    ));
    match std::fs::write(&path, dump_chrome_json(None)) {
        Ok(()) => {
            crate::info!("trace dumped", path = path.display(), reason = reason);
            Some(path)
        }
        Err(e) => {
            crate::warn!("trace dump failed", path = path.display(), error = e);
            None
        }
    }
}

/// The throttle gate for [`flight_dump`]: claims a dump slot for trace
/// time `now`, refusing within [`FLIGHT_GAP_NS`] of the last claim.
/// `LAST_FLIGHT_NS == 0` means "never dumped" — the first fault after
/// tracer init must dump even though `now` is still near the epoch.
fn flight_gate(now: u64) -> bool {
    let last = LAST_FLIGHT_NS.load(Ordering::Relaxed);
    if last != 0 && now.saturating_sub(last) < FLIGHT_GAP_NS {
        return false;
    }
    // `max(1)` keeps a claim at epoch ns 0 from reading as "never".
    LAST_FLIGHT_NS
        .compare_exchange(last, now.max(1), Ordering::Relaxed, Ordering::Relaxed)
        .is_ok()
}

/// The error-path flight dump: like [`dump_to_dir`] but gated on tracing
/// being enabled and throttled to one dump per second, so a storm of
/// protocol errors cannot flood the disk.
pub fn flight_dump(reason: &str) -> Option<PathBuf> {
    if !enabled() {
        return None;
    }
    if !flight_gate(now_ns()) {
        return None;
    }
    dump_to_dir(reason)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shared-process discipline: tests share the one global tracer, so
    /// each filters on its own unique trace ids and never asserts on the
    /// global totals alone.
    fn unique_trace_id() -> u64 {
        static NEXT: AtomicU64 = AtomicU64::new(0x7000_0000);
        NEXT.fetch_add(1, Ordering::Relaxed)
    }

    fn setup() {
        init(64);
        set_enabled(true);
    }

    #[test]
    fn disabled_gate_records_nothing() {
        init(64);
        set_enabled(false);
        let id = unique_trace_id();
        let span = Span::begin(Stage::Score, id, 0, 0);
        span.end();
        instant(Stage::Accept, id, 0, 0, 0);
        // Back on for the other tests in this process (enable-only, like
        // the server: concurrent tests must never switch each other off).
        set_enabled(true);
        assert!(
            collect(None).iter().all(|ev| ev.trace_id != id),
            "no event may be recorded while disabled"
        );
    }

    #[test]
    fn span_and_instant_round_trip() {
        setup();
        let id = unique_trace_id();
        let span = Span::begin(Stage::Parse, id, 42, 3);
        std::thread::sleep(std::time::Duration::from_millis(1));
        span.end_with(7);
        instant(Stage::Migrate, id, 42, 3, 9);
        let events: Vec<SpanEvent> = collect(None)
            .into_iter()
            .filter(|ev| ev.trace_id == id)
            .collect();
        assert_eq!(events.len(), 2);
        let parse = events.iter().find(|e| e.stage == Stage::Parse).unwrap();
        assert!(parse.dur_ns >= 1_000_000, "span measured its sleep");
        assert_eq!((parse.token, parse.shard, parse.aux), (42, 3, 7));
        let mig = events.iter().find(|e| e.stage == Stage::Migrate).unwrap();
        assert_eq!(mig.dur_ns, 0, "instant events have no duration");
        assert_eq!(mig.aux, 9);
    }

    #[test]
    fn ring_wrap_counts_drops_and_keeps_newest() {
        setup();
        let id = unique_trace_id();
        // A dedicated thread gets a fresh ring, so wrap accounting is
        // exact: capacity rounds to 64, so 100 events overwrite 36.
        let (kept, dropped) = std::thread::spawn(move || {
            register_thread("wrap-test", None);
            let before = stats().dropped;
            for i in 0..100u64 {
                instant(Stage::Chunk, id, 0, 0, i);
            }
            let kept: Vec<u64> = collect(None)
                .into_iter()
                .filter(|ev| ev.trace_id == id)
                .map(|ev| ev.aux)
                .collect();
            (kept, stats().dropped - before)
        })
        .join()
        .unwrap();
        assert_eq!(dropped, 36, "wrap-counted drop accounting");
        // A wrapped ring proves capacity-1 slots stable: the oldest
        // retained index shares its slot with the producer's next write,
        // so the snapshot discards it rather than risk a torn read.
        assert_eq!(kept, (37..100).collect::<Vec<u64>>(), "newest window retained");
    }

    #[test]
    fn ctx_flows_into_ctx_spans() {
        setup();
        let id = unique_trace_id();
        set_ctx(id, 77, 5);
        let span = Span::begin_ctx(Stage::Chunk);
        span.end_with(11);
        instant_ctx(Stage::PageRead, 3);
        clear_ctx();
        instant_ctx(Stage::PageWrite, 4);
        let events: Vec<SpanEvent> = collect(None)
            .into_iter()
            .filter(|ev| ev.trace_id == id)
            .collect();
        assert_eq!(events.len(), 2, "cleared ctx no longer attributes");
        assert!(events.iter().all(|ev| ev.token == 77 && ev.shard == 5));
    }

    #[test]
    fn chrome_dump_is_balanced_json_with_events() {
        setup();
        let id = unique_trace_id();
        let span = Span::begin(Stage::Score, id, 1, 0);
        span.end();
        let json = dump_chrome_json(None);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"score\""));
        assert!(json.contains("\"displayTimeUnit\":\"ms\""));
        assert!(json.contains("\"dropped\":"));
        // Structural well-formedness: braces and brackets balance and
        // every quote is closed (no registry JSON parser to lean on).
        let bytes = json.as_bytes();
        let (mut depth, mut sq) = (0i64, 0i64);
        let mut in_str = false;
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' if in_str => i += 1,
                b'"' => in_str = !in_str,
                b'{' if !in_str => depth += 1,
                b'}' if !in_str => depth -= 1,
                b'[' if !in_str => sq += 1,
                b']' if !in_str => sq -= 1,
                _ => {}
            }
            assert!(depth >= 0 && sq >= 0);
            i += 1;
        }
        assert_eq!((depth, sq), (0, 0), "balanced braces/brackets");
        assert!(!in_str, "all strings closed");
    }

    #[test]
    fn window_filters_old_events() {
        setup();
        let id = unique_trace_id();
        instant(Stage::Accept, id, 0, 0, 1);
        std::thread::sleep(std::time::Duration::from_millis(20));
        instant(Stage::Accept, id, 0, 0, 2);
        let recent: Vec<u64> = collect(Some(10_000_000)) // 10 ms
            .into_iter()
            .filter(|ev| ev.trace_id == id)
            .map(|ev| ev.aux)
            .collect();
        assert_eq!(recent, vec![2], "only the event inside the window");
        let all: Vec<u64> = collect(None)
            .into_iter()
            .filter(|ev| ev.trace_id == id)
            .map(|ev| ev.aux)
            .collect();
        assert_eq!(all, vec![1, 2]);
    }

    #[test]
    fn concurrent_dump_never_tears() {
        setup();
        let id = unique_trace_id();
        let stop = Arc::new(AtomicBool::new(false));
        let writer_stop = Arc::clone(&stop);
        let writer = std::thread::spawn(move || {
            register_thread("tear-test", None);
            let mut i = 0u64;
            while !writer_stop.load(Ordering::Relaxed) {
                // aux always mirrors token: a torn read would break the
                // invariant.
                instant(Stage::Chunk, id, i, 0, i);
                i += 1;
            }
        });
        for _ in 0..50 {
            for ev in collect(None).into_iter().filter(|ev| ev.trace_id == id) {
                assert_eq!(ev.token, ev.aux, "torn event escaped the seqlock");
            }
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn dump_redacts_session_tokens() {
        setup();
        let id = unique_trace_id();
        // A recognizable credential: its raw decimal must never appear in
        // an export, while both events must share one exported value.
        let token = 0xDEAD_BEEF_CAFE_F00Du64;
        instant(Stage::ParkSpill, id, token, 0, 1);
        instant(Stage::ParkLoad, id, token, 0, 2);
        assert_ne!(export_token(token), token);
        assert_eq!(export_token(token), export_token(token), "stable per process");
        assert_eq!(export_token(0), 0, "no-session marker survives");
        let json = dump_chrome_json(None);
        assert!(
            !json.contains(&format!("\"token\":{token}")),
            "raw resume token leaked into the export"
        );
        assert!(
            json.contains(&format!("\"token\":{}", export_token(token))),
            "hashed token missing — correlation lost"
        );
    }

    #[test]
    fn flight_gate_permits_the_first_dump_then_throttles() {
        // Only this test touches the throttle state.
        LAST_FLIGHT_NS.store(0, Ordering::Relaxed);
        assert!(flight_gate(10), "first fault right after init must dump");
        assert!(!flight_gate(20), "second fault inside the gap is throttled");
        assert!(flight_gate(10 + FLIGHT_GAP_NS), "gap elapsed: dump again");
    }

    #[test]
    fn dump_to_dir_requires_env() {
        init(64);
        // The suite must not depend on the environment: only assert the
        // no-env behavior (the env-driven path is covered end to end by
        // the serve flight-recorder tests).
        if std::env::var_os("CIRA_TRACE_DIR").is_none() {
            assert_eq!(dump_to_dir("unit"), None);
        }
    }
}
