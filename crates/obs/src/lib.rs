//! `cira-obs` — workspace-wide observability, std-only.
//!
//! Every other `cira` crate may depend on this one (it depends on
//! nothing), and it provides the three legs a production service needs to
//! stay debuggable under load:
//!
//! * [`log`] — a leveled, structured `key=value` logger. Libraries call
//!   the [`error!`]/[`warn!`]/[`info!`]/[`debug!`]/[`trace!`] macros and
//!   never write to stderr unconditionally; the binary decides the level
//!   (via `CIRA_LOG` or a `--log-level` flag) and the sink (stderr or a
//!   file via `CIRA_LOG_FILE`). Disabled levels cost one relaxed atomic
//!   load.
//! * [`metrics`] — lock-free instruments: [`metrics::Counter`],
//!   [`metrics::Gauge`], and a fixed-bucket log2 [`metrics::Histogram`]
//!   whose snapshots merge associatively, plus a [`Registry`] that renders
//!   the Prometheus text exposition format.
//! * [`promtext`] — a parser/validator for that exposition format, used
//!   by tests (well-formedness assertions) and by `cira stats` to render
//!   histogram quantiles client-side.
//! * [`mod@trace`] — a flight recorder: per-thread lock-free ring buffers of
//!   compact span events covering a request's whole lifecycle, exported
//!   as Chrome trace-event JSON (`GET /trace`, the `TRACE_DUMP` wire
//!   frame, `SIGUSR1`, and automatic error-path dumps). Disabled tracing
//!   costs one relaxed atomic load per site, like disabled log levels.
//! * [`http`] — a minimal HTTP/1.0 `GET` responder over
//!   `std::net::TcpListener`, enough to expose `/metrics`, `/healthz`,
//!   and `/trace` to a scraper with zero dependencies.
//!
//! All hot-path updates use relaxed atomics: metrics are observational
//! and never synchronize data, so instrumentation is cheap enough to
//! leave on permanently (see `BENCH_obs.json` for the measured overhead).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod http;
pub mod log;
pub mod metrics;
pub mod promtext;
pub mod trace;

pub use log::Level;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
