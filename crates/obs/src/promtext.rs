//! Parser and validator for the Prometheus text exposition format.
//!
//! This is the read side of [`crate::metrics::Registry::render`]: tests
//! use it to assert that `/metrics` output is well-formed (one `# TYPE`
//! per family, monotone counters and cumulative buckets), and
//! `cira stats` uses it to turn scraped text back into counters and
//! histogram quantiles for terminal display.
//!
//! The parser accepts the subset of the 0.0.4 text format the registry
//! emits plus reasonable variation (any label order, missing `# HELP`,
//! scientific-notation floats). It does not aim to parse every exposition
//! in the wild.

use std::collections::BTreeMap;
use std::fmt;

/// A parse or validation failure, with the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line the error was detected on (0 = whole-document check).
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "exposition invalid: {}", self.msg)
        } else {
            write!(f, "exposition invalid at line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        msg: msg.into(),
    })
}

/// Declared type of a metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricType {
    /// Monotonically increasing value.
    Counter,
    /// Value that can move either way.
    Gauge,
    /// Cumulative-bucket distribution.
    Histogram,
    /// A type this crate does not emit (`summary`, `untyped`).
    Other,
}

/// One sample line: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full sample name, including `_bucket`/`_sum`/`_count` suffixes.
    pub name: String,
    /// Label pairs in sorted order.
    pub labels: BTreeMap<String, String>,
    /// Parsed value.
    pub value: f64,
}

/// A metric family: the `# TYPE` declaration plus its samples.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedFamily {
    /// Family name (without histogram suffixes).
    pub name: String,
    /// `# HELP` text, if present.
    pub help: Option<String>,
    /// Declared type.
    pub kind: MetricType,
    /// Samples belonging to this family, in document order.
    pub samples: Vec<Sample>,
}

/// A histogram reconstructed from `_bucket`/`_sum`/`_count` samples of
/// one label set.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedHistogram {
    /// Finite bucket upper bounds, ascending (the `+Inf` bound is
    /// implicit as the last element of `cumulative`).
    pub bounds: Vec<f64>,
    /// Cumulative counts per bound, ending with the `+Inf` count.
    pub cumulative: Vec<u64>,
    /// Sum of observations.
    pub sum: f64,
    /// Total observation count (the `+Inf` cumulative count).
    pub count: u64,
}

impl ParsedHistogram {
    /// Estimates the `q`-quantile by linear interpolation within the
    /// target bucket (the same estimate Prometheus' `histogram_quantile`
    /// produces). Returns 0 when empty; ranks in the `+Inf` bucket clamp
    /// to the highest finite bound.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 || self.cumulative.is_empty() {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut prev_cum = 0u64;
        let mut prev_bound = 0.0f64;
        for (i, &cum) in self.cumulative.iter().enumerate() {
            if (cum as f64) >= rank && cum > prev_cum {
                let upper = match self.bounds.get(i) {
                    Some(&b) => b,
                    None => return prev_bound, // +Inf bucket
                };
                let n = (cum - prev_cum) as f64;
                let into = (rank - prev_cum as f64).max(0.0) / n;
                return prev_bound + (upper - prev_bound) * into;
            }
            prev_cum = cum;
            if let Some(&b) = self.bounds.get(i) {
                prev_bound = b;
            }
        }
        prev_bound
    }
}

/// A parsed exposition document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Exposition {
    /// Families in document order.
    pub families: Vec<ParsedFamily>,
}

impl Exposition {
    /// Parses exposition text. Fails on malformed lines, samples with no
    /// preceding `# TYPE`, or a family declared twice.
    pub fn parse(text: &str) -> Result<Exposition, ParseError> {
        let mut doc = Exposition::default();
        let mut pending_help: Vec<(String, String)> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim_end();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let (name, help) = match rest.split_once(' ') {
                    Some((n, h)) => (n.to_string(), h.to_string()),
                    None => (rest.to_string(), String::new()),
                };
                pending_help.push((name, help));
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, kind) = rest
                    .split_once(' ')
                    .ok_or(())
                    .or_else(|()| err(lineno, "TYPE line missing type"))?;
                if doc.families.iter().any(|f| f.name == name) {
                    return err(lineno, format!("duplicate # TYPE for family {name}"));
                }
                let kind = match kind {
                    "counter" => MetricType::Counter,
                    "gauge" => MetricType::Gauge,
                    "histogram" => MetricType::Histogram,
                    _ => MetricType::Other,
                };
                let help = pending_help
                    .iter()
                    .rev()
                    .find(|(n, _)| n == name)
                    .map(|(_, h)| h.clone());
                doc.families.push(ParsedFamily {
                    name: name.to_string(),
                    help,
                    kind,
                    samples: Vec::new(),
                });
            } else if line.starts_with('#') {
                continue; // comment
            } else {
                let sample = parse_sample(line, lineno)?;
                let family = doc
                    .families
                    .iter_mut()
                    .rev()
                    .find(|f| is_member(&f.name, &sample.name, f.kind));
                match family {
                    Some(f) => f.samples.push(sample),
                    None => {
                        return err(
                            lineno,
                            format!("sample {} has no preceding # TYPE", sample.name),
                        )
                    }
                }
            }
        }
        Ok(doc)
    }

    /// Parses and then validates; the entry point tests should use.
    pub fn parse_validated(text: &str) -> Result<Exposition, ParseError> {
        let doc = Exposition::parse(text)?;
        doc.validate()?;
        Ok(doc)
    }

    /// Structural validation beyond parsing: every family has samples;
    /// counters are finite and non-negative; histograms have monotone
    /// cumulative buckets, a `+Inf` bucket, and `_count` equal to it.
    pub fn validate(&self) -> Result<(), ParseError> {
        for fam in &self.families {
            if fam.samples.is_empty() {
                return err(0, format!("family {} declared but has no samples", fam.name));
            }
            match fam.kind {
                MetricType::Counter => {
                    for s in &fam.samples {
                        if !s.value.is_finite() || s.value < 0.0 {
                            return err(
                                0,
                                format!("counter {} has non-monotone value {}", s.name, s.value),
                            );
                        }
                    }
                }
                MetricType::Histogram => {
                    for label_key in fam.label_sets() {
                        fam.histogram_for(&label_key).map_err(|msg| ParseError {
                            line: 0,
                            msg: format!("histogram {}: {msg}", fam.name),
                        })?;
                    }
                }
                MetricType::Gauge | MetricType::Other => {}
            }
        }
        Ok(())
    }

    /// The family named `name`, if present.
    pub fn family(&self, name: &str) -> Option<&ParsedFamily> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Value of the single-sample counter or gauge `name`.
    pub fn value(&self, name: &str) -> Option<f64> {
        let fam = self.family(name)?;
        fam.samples.first().map(|s| s.value)
    }

    /// Reconstructs the unlabeled histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<ParsedHistogram> {
        self.family(name)?.histogram_for(&BTreeMap::new()).ok()
    }
}

impl ParsedFamily {
    /// Distinct label sets among this histogram family's samples, with
    /// the `le` label removed.
    fn label_sets(&self) -> Vec<BTreeMap<String, String>> {
        let mut sets: Vec<BTreeMap<String, String>> = Vec::new();
        for s in &self.samples {
            let mut labels = s.labels.clone();
            labels.remove("le");
            if !sets.contains(&labels) {
                sets.push(labels);
            }
        }
        sets
    }

    /// Reconstructs the histogram for one label set, checking cumulative
    /// monotonicity, the presence of `+Inf`, and `_count` consistency.
    fn histogram_for(&self, labels: &BTreeMap<String, String>) -> Result<ParsedHistogram, String> {
        let bucket_name = format!("{}_bucket", self.name);
        let sum_name = format!("{}_sum", self.name);
        let count_name = format!("{}_count", self.name);
        let mut buckets: Vec<(f64, u64)> = Vec::new();
        let mut inf: Option<u64> = None;
        let mut sum = None;
        let mut count = None;
        for s in &self.samples {
            let mut s_labels = s.labels.clone();
            let le = s_labels.remove("le");
            if &s_labels != labels {
                continue;
            }
            if s.name == bucket_name {
                let le = le.ok_or("bucket sample missing le label")?;
                let cum = s.value as u64;
                if le == "+Inf" {
                    inf = Some(cum);
                } else {
                    let bound: f64 = le.parse().map_err(|_| format!("bad le bound {le:?}"))?;
                    buckets.push((bound, cum));
                }
            } else if s.name == sum_name {
                sum = Some(s.value);
            } else if s.name == count_name {
                count = Some(s.value as u64);
            }
        }
        buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
        let inf = inf.ok_or("missing +Inf bucket")?;
        let count = count.ok_or("missing _count sample")?;
        if count != inf {
            return Err(format!("_count {count} != +Inf bucket {inf}"));
        }
        let mut prev = 0u64;
        for &(bound, cum) in &buckets {
            if cum < prev {
                return Err(format!("cumulative count decreases at le={bound}"));
            }
            prev = cum;
        }
        if inf < prev {
            return Err("cumulative count decreases at le=+Inf".to_string());
        }
        let bounds: Vec<f64> = buckets.iter().map(|&(b, _)| b).collect();
        let mut cumulative: Vec<u64> = buckets.iter().map(|&(_, c)| c).collect();
        cumulative.push(inf);
        Ok(ParsedHistogram {
            bounds,
            cumulative,
            sum: sum.unwrap_or(0.0),
            count,
        })
    }
}

/// Whether `sample` (e.g. `x_bucket`) belongs to family `family` of `kind`.
fn is_member(family: &str, sample: &str, kind: MetricType) -> bool {
    if sample == family {
        return true;
    }
    if kind == MetricType::Histogram {
        if let Some(suffix) = sample.strip_prefix(family) {
            return matches!(suffix, "_bucket" | "_sum" | "_count");
        }
    }
    false
}

fn parse_sample(line: &str, lineno: usize) -> Result<Sample, ParseError> {
    let (name_part, value_part) = match line.find('{') {
        Some(brace) => {
            let close = line[brace..]
                .find('}')
                .map(|i| brace + i)
                .ok_or(())
                .or_else(|()| err(lineno, "unclosed label brace"))?;
            (line[..close + 1].to_string(), line[close + 1..].trim())
        }
        None => {
            let mut it = line.splitn(2, ' ');
            let name = it.next().unwrap_or_default().to_string();
            (name, it.next().unwrap_or_default().trim())
        }
    };
    let value_str = value_part
        .split_whitespace()
        .next()
        .ok_or(())
        .or_else(|()| err(lineno, "sample missing value"))?;
    let value: f64 = match value_str {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        s => s
            .parse()
            .map_err(|_| ParseError {
                line: lineno,
                msg: format!("bad sample value {s:?}"),
            })?,
    };
    let (name, labels) = match name_part.find('{') {
        Some(brace) => {
            let name = name_part[..brace].to_string();
            let body = &name_part[brace + 1..name_part.len() - 1];
            (name, parse_labels(body, lineno)?)
        }
        None => (name_part, BTreeMap::new()),
    };
    if name.is_empty() {
        return err(lineno, "sample missing name");
    }
    Ok(Sample {
        name,
        labels,
        value,
    })
}

fn parse_labels(body: &str, lineno: usize) -> Result<BTreeMap<String, String>, ParseError> {
    let mut labels = BTreeMap::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or(())
            .or_else(|()| err(lineno, "label missing ="))?;
        let key = rest[..eq].trim().to_string();
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return err(lineno, "label value not quoted");
        }
        let mut value = String::new();
        let mut chars = after[1..].char_indices();
        let mut consumed = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, escaped)) => value.push(escaped),
                    None => return err(lineno, "dangling escape in label value"),
                },
                '"' => {
                    // Quote sits at byte 1 + i of `after`; skip past it.
                    consumed = Some(i + 2);
                    break;
                }
                c => value.push(c),
            }
        }
        let consumed = consumed
            .ok_or(())
            .or_else(|()| err(lineno, "unterminated label value"))?;
        labels.insert(key, value);
        rest = after[consumed..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# HELP cira_requests_total Requests handled
# TYPE cira_requests_total counter
cira_requests_total 42
# TYPE cira_depth gauge
cira_depth{worker=\"0\"} 3
cira_depth{worker=\"1\"} 1
# HELP cira_lat_us Latency
# TYPE cira_lat_us histogram
cira_lat_us_bucket{le=\"1\"} 2
cira_lat_us_bucket{le=\"2\"} 5
cira_lat_us_bucket{le=\"4\"} 9
cira_lat_us_bucket{le=\"+Inf\"} 10
cira_lat_us_sum 31
cira_lat_us_count 10
";

    #[test]
    fn parses_and_validates_round_trip() {
        let doc = Exposition::parse_validated(SAMPLE).unwrap();
        assert_eq!(doc.families.len(), 3);
        assert_eq!(doc.value("cira_requests_total"), Some(42.0));
        let depth = doc.family("cira_depth").unwrap();
        assert_eq!(depth.kind, MetricType::Gauge);
        assert_eq!(depth.samples.len(), 2);
        assert_eq!(depth.samples[1].labels["worker"], "1");
        let h = doc.histogram("cira_lat_us").unwrap();
        assert_eq!(h.count, 10);
        assert_eq!(h.sum, 31.0);
        assert_eq!(h.cumulative, vec![2, 5, 9, 10]);
        let p50 = h.quantile(0.5);
        assert!((1.0..=2.0).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn rejects_duplicate_type_lines() {
        let text = "# TYPE a counter\na 1\n# TYPE a counter\na 2\n";
        assert!(Exposition::parse(text).is_err());
    }

    #[test]
    fn rejects_orphan_samples() {
        assert!(Exposition::parse("nometa 5\n").is_err());
    }

    #[test]
    fn rejects_non_monotone_buckets() {
        let text = "\
# TYPE h histogram
h_bucket{le=\"1\"} 5
h_bucket{le=\"2\"} 3
h_bucket{le=\"+Inf\"} 5
h_sum 9
h_count 5
";
        let doc = Exposition::parse(text).unwrap();
        assert!(doc.validate().is_err());
    }

    #[test]
    fn rejects_count_mismatch() {
        let text = "\
# TYPE h histogram
h_bucket{le=\"+Inf\"} 5
h_sum 9
h_count 4
";
        let doc = Exposition::parse(text).unwrap();
        assert!(doc.validate().is_err());
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        // Degenerate snapshot with no buckets at all.
        let bare = ParsedHistogram {
            bounds: vec![],
            cumulative: vec![],
            sum: 0.0,
            count: 0,
        };
        assert_eq!(bare.quantile(0.5), 0.0);
        // A parsed histogram whose buckets exist but saw no observations.
        let text = "\
# TYPE h histogram
h_bucket{le=\"1\"} 0
h_bucket{le=\"+Inf\"} 0
h_sum 0
h_count 0
";
        let h = Exposition::parse_validated(text)
            .unwrap()
            .histogram("h")
            .unwrap();
        assert_eq!(h.count, 0);
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(1.0), 0.0);
    }

    #[test]
    fn quantile_with_single_bucket_interpolates_from_zero() {
        // All mass in one finite bucket interpolates across (0, 8].
        let text = "\
# TYPE h histogram
h_bucket{le=\"8\"} 4
h_bucket{le=\"+Inf\"} 4
h_sum 20
h_count 4
";
        let h = Exposition::parse_validated(text)
            .unwrap()
            .histogram("h")
            .unwrap();
        assert_eq!(h.quantile(1.0), 8.0);
        assert_eq!(h.quantile(0.5), 4.0);
        assert!(h.quantile(0.25) < h.quantile(0.5));
        // All mass in `+Inf` clamps to the highest finite bound.
        let inf_only = "\
# TYPE h histogram
h_bucket{le=\"8\"} 0
h_bucket{le=\"+Inf\"} 3
h_sum 99
h_count 3
";
        let h = Exposition::parse_validated(inf_only)
            .unwrap()
            .histogram("h")
            .unwrap();
        assert_eq!(h.quantile(0.99), 8.0);
    }

    #[test]
    fn registry_output_parses_clean() {
        let reg = crate::metrics::Registry::new("x");
        reg.counter("ops_total", "Ops", || 7);
        let h = std::sync::Arc::new(crate::metrics::Histogram::new());
        for v in [1, 10, 100] {
            h.record(v);
        }
        let hh = std::sync::Arc::clone(&h);
        reg.histogram("us", "Micros", move || hh.snapshot());
        let doc = Exposition::parse_validated(&reg.render()).unwrap();
        assert_eq!(doc.value("x_ops_total"), Some(7.0));
        assert_eq!(doc.histogram("x_us").unwrap().count, 3);
    }
}
