//! Leveled, structured `key=value` logging.
//!
//! A log record is one line of `key=value` pairs on a single sink
//! (stderr by default, or a file):
//!
//! ```text
//! ts=2026-08-06T14:03:55.017Z level=info target=cira_serve::server msg="listening" addr=127.0.0.1:4917
//! ```
//!
//! The filter level is a process-wide atomic read before any formatting
//! happens, so a disabled call site costs one relaxed load. The level is
//! initialized lazily from the `CIRA_LOG` environment variable (default
//! [`Level::Warn`]) the first time any record is attempted, and a binary
//! can override it explicitly with [`init`] (the CLI's `--log-level` flag
//! does). `CIRA_LOG=off` silences everything, which is what makes the
//! library crates' warnings configurable rather than unconditional
//! `eprintln!` noise.
//!
//! Use through the crate-root macros:
//!
//! ```
//! cira_obs::info!("server started", addr = "127.0.0.1:0", workers = 8);
//! cira_obs::warn!("could not write results file", path = "results/x.csv");
//! ```

use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// The operation failed and no fallback exists.
    Error = 1,
    /// Something unexpected that the process survives (the default filter).
    Warn = 2,
    /// High-level lifecycle events (listeners starting, sessions opening).
    Info = 3,
    /// Per-operation detail (cache misses, per-connection events).
    Debug = 4,
    /// Hot-path detail; expect volume.
    Trace = 5,
}

impl Level {
    /// The lowercase name used on the wire and in `CIRA_LOG`.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a level name (case-insensitive). `off`/`none` parse as
    /// `None`, meaning "log nothing".
    pub fn parse(s: &str) -> Result<Option<Level>, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Ok(Some(Level::Error)),
            "warn" | "warning" => Ok(Some(Level::Warn)),
            "info" => Ok(Some(Level::Info)),
            "debug" => Ok(Some(Level::Debug)),
            "trace" => Ok(Some(Level::Trace)),
            "off" | "none" | "0" => Ok(None),
            other => Err(format!(
                "unknown log level {other:?}; expected error|warn|info|debug|trace|off"
            )),
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where log lines go.
#[derive(Debug)]
enum Sink {
    Stderr,
    File(std::fs::File),
}

/// 0 = off, 1..=5 = Level, UNSET = not yet initialized.
const UNSET: u8 = 0xFF;
static FILTER: AtomicU8 = AtomicU8::new(UNSET);
static SINK: OnceLock<Mutex<Sink>> = OnceLock::new();

fn sink() -> &'static Mutex<Sink> {
    SINK.get_or_init(|| Mutex::new(Sink::Stderr))
}

/// Initializes the filter from `CIRA_LOG` (default warn) and the sink from
/// `CIRA_LOG_FILE` (default stderr). Called lazily on the first record if
/// no explicit [`init`] happened; calling it again is harmless.
fn init_from_env() -> u8 {
    let level = match std::env::var("CIRA_LOG") {
        Ok(v) => Level::parse(&v).unwrap_or(Some(Level::Warn)),
        Err(_) => Some(Level::Warn),
    };
    if let Ok(path) = std::env::var("CIRA_LOG_FILE") {
        let _ = log_to_file(&path);
    }
    let raw = level.map_or(0, |l| l as u8);
    // Racing initializers agree on the value unless an explicit `init`
    // interleaved — in which case keep the explicit choice.
    let _ = FILTER.compare_exchange(UNSET, raw, Ordering::Relaxed, Ordering::Relaxed);
    FILTER.load(Ordering::Relaxed)
}

/// Sets the filter level explicitly (`None` = log nothing), overriding
/// `CIRA_LOG`. Binaries call this at startup; libraries never should.
pub fn init(level: Option<Level>) {
    FILTER.store(level.map_or(0, |l| l as u8), Ordering::Relaxed);
}

/// The current filter level (`None` = everything off).
pub fn current_level() -> Option<Level> {
    match FILTER.load(Ordering::Relaxed) {
        UNSET => current_after_init(),
        0 => None,
        n => Some(decode(n)),
    }
}

fn current_after_init() -> Option<Level> {
    match init_from_env() {
        0 | UNSET => None,
        n => Some(decode(n)),
    }
}

fn decode(n: u8) -> Level {
    match n {
        1 => Level::Error,
        2 => Level::Warn,
        3 => Level::Info,
        4 => Level::Debug,
        _ => Level::Trace,
    }
}

/// Redirects log output to a file (appending). Returns the I/O error if
/// the file cannot be opened; the sink is unchanged on failure.
pub fn log_to_file(path: &str) -> std::io::Result<()> {
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    *sink().lock().unwrap_or_else(|e| e.into_inner()) = Sink::File(file);
    Ok(())
}

/// Redirects log output back to stderr.
pub fn log_to_stderr() {
    *sink().lock().unwrap_or_else(|e| e.into_inner()) = Sink::Stderr;
}

/// Whether a record at `level` would be emitted. This is the cheap gate
/// the macros check before formatting anything.
#[inline]
pub fn enabled(level: Level) -> bool {
    let f = FILTER.load(Ordering::Relaxed);
    if f == UNSET {
        return (level as u8) <= init_from_env();
    }
    (level as u8) <= f
}

/// Quotes a value if it contains whitespace, quotes, or `=` so the line
/// stays machine-parseable as space-separated `key=value` pairs.
fn push_value(out: &mut String, v: &str) {
    let needs_quotes =
        v.is_empty() || v.chars().any(|c| c.is_whitespace() || c == '"' || c == '=');
    if !needs_quotes {
        out.push_str(v);
        return;
    }
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats a Unix timestamp as `YYYY-MM-DDTHH:MM:SS.mmmZ` (UTC).
/// Days-to-civil conversion per Howard Hinnant's algorithm.
fn format_timestamp(out: &mut String, now: SystemTime) {
    use fmt::Write as _;
    let d = now
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default();
    let secs = d.as_secs() as i64;
    let millis = d.subsec_millis();
    let days = secs.div_euclid(86_400);
    let tod = secs.rem_euclid(86_400);
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { y + 1 } else { y };
    let _ = write!(
        out,
        "{year:04}-{month:02}-{day:02}T{:02}:{:02}:{:02}.{millis:03}Z",
        tod / 3600,
        (tod / 60) % 60,
        tod % 60,
    );
}

/// Formats and writes one record. Callers (the macros) must have checked
/// [`enabled`] first; this function formats unconditionally.
pub fn write_record(
    level: Level,
    target: &str,
    msg: &dyn fmt::Display,
    kvs: &[(&str, &dyn fmt::Display)],
) {
    let mut line = String::with_capacity(96);
    line.push_str("ts=");
    format_timestamp(&mut line, SystemTime::now());
    line.push_str(" level=");
    line.push_str(level.as_str());
    line.push_str(" target=");
    line.push_str(target);
    line.push_str(" msg=");
    push_value(&mut line, &msg.to_string());
    for (k, v) in kvs {
        line.push(' ');
        line.push_str(k);
        line.push('=');
        push_value(&mut line, &v.to_string());
    }
    line.push('\n');
    let mut g = sink().lock().unwrap_or_else(|e| e.into_inner());
    // A full disk or closed stderr must never take the process down.
    let _ = match &mut *g {
        Sink::Stderr => std::io::stderr().write_all(line.as_bytes()),
        Sink::File(f) => f.write_all(line.as_bytes()),
    };
}

/// Formats one record into a `String` — the testable core of
/// [`write_record`], also used by tests asserting the line grammar.
pub fn format_record(
    level: Level,
    target: &str,
    msg: &dyn fmt::Display,
    kvs: &[(&str, &dyn fmt::Display)],
) -> String {
    let mut line = String::new();
    line.push_str("level=");
    line.push_str(level.as_str());
    line.push_str(" target=");
    line.push_str(target);
    line.push_str(" msg=");
    push_value(&mut line, &msg.to_string());
    for (k, v) in kvs {
        line.push(' ');
        line.push_str(k);
        line.push('=');
        push_value(&mut line, &v.to_string());
    }
    line
}

/// Logs at an explicit [`Level`]: `log_event!(level, "msg", key = value, ...)`.
///
/// The message is any `Display` value; each trailing `key = value` pair
/// becomes a structured field. Nothing is formatted when the level is
/// disabled.
#[macro_export]
macro_rules! log_event {
    ($lvl:expr, $msg:expr $(, $k:ident = $v:expr)* $(,)?) => {{
        let lvl = $lvl;
        if $crate::log::enabled(lvl) {
            $crate::log::write_record(
                lvl,
                module_path!(),
                &$msg,
                &[$((stringify!($k), &$v as &dyn ::core::fmt::Display)),*],
            );
        }
    }};
}

/// Logs at [`Level::Error`]; see [`log_event!`] for the grammar.
#[macro_export]
macro_rules! error {
    ($($t:tt)*) => { $crate::log_event!($crate::log::Level::Error, $($t)*) };
}

/// Logs at [`Level::Warn`]; see [`log_event!`] for the grammar.
#[macro_export]
macro_rules! warn {
    ($($t:tt)*) => { $crate::log_event!($crate::log::Level::Warn, $($t)*) };
}

/// Logs at [`Level::Info`]; see [`log_event!`] for the grammar.
#[macro_export]
macro_rules! info {
    ($($t:tt)*) => { $crate::log_event!($crate::log::Level::Info, $($t)*) };
}

/// Logs at [`Level::Debug`]; see [`log_event!`] for the grammar.
#[macro_export]
macro_rules! debug {
    ($($t:tt)*) => { $crate::log_event!($crate::log::Level::Debug, $($t)*) };
}

/// Logs at [`Level::Trace`]; see [`log_event!`] for the grammar.
#[macro_export]
macro_rules! trace {
    ($($t:tt)*) => { $crate::log_event!($crate::log::Level::Trace, $($t)*) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(Level::parse("INFO").unwrap(), Some(Level::Info));
        assert_eq!(Level::parse("warning").unwrap(), Some(Level::Warn));
        assert_eq!(Level::parse("off").unwrap(), None);
        assert!(Level::parse("loud").is_err());
        assert!(Level::Error < Level::Trace);
    }

    #[test]
    fn record_grammar_quotes_only_when_needed() {
        let line = format_record(
            Level::Info,
            "cira_obs::log",
            &"hello world",
            &[("n", &42u32), ("path", &"a b\"c")],
        );
        assert_eq!(
            line,
            "level=info target=cira_obs::log msg=\"hello world\" n=42 path=\"a b\\\"c\""
        );
        let bare = format_record(Level::Warn, "t", &"plain", &[]);
        assert_eq!(bare, "level=warn target=t msg=plain");
    }

    #[test]
    fn timestamp_is_iso8601_utc() {
        let mut s = String::new();
        // 2026-08-06 00:01:02.345 UTC.
        let t = UNIX_EPOCH + Duration::from_millis(1_785_974_462_345);
        format_timestamp(&mut s, t);
        assert_eq!(s, "2026-08-06T00:01:02.345Z");
        let mut epoch = String::new();
        format_timestamp(&mut epoch, UNIX_EPOCH);
        assert_eq!(epoch, "1970-01-01T00:00:00.000Z");
    }

    #[test]
    fn explicit_init_controls_enabled() {
        init(Some(Level::Info));
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        init(None);
        assert!(!enabled(Level::Error));
        init(Some(Level::Warn));
    }
}
