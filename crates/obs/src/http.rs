//! Minimal HTTP/1.0 `GET` responder for exposing `/metrics`, `/healthz`,
//! and `/trace`.
//!
//! Just enough HTTP to satisfy a Prometheus scraper or `curl` over
//! `std::net::TcpListener`: one short-lived connection per request, no
//! keep-alive, no TLS, no routing beyond exact paths. The accept loop
//! runs on its own thread, polls a shutdown flag between accepts
//! (non-blocking listener + short sleep), and renders the registry fresh
//! on every scrape.
//!
//! Routes:
//!
//! * `GET /metrics` — the Prometheus text exposition of the registry;
//! * `GET /` and `GET /healthz` — liveness plus build version and the
//!   listener's uptime in seconds;
//! * `GET /trace?ms=N` — the flight recorder's retained events from the
//!   last `N` milliseconds (everything retained when `ms` is absent) as
//!   Chrome trace-event JSON. Always valid JSON; an empty event list
//!   when tracing was never initialized.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::metrics::Registry;

/// When this process's first metrics listener came up — the `/healthz`
/// uptime epoch.
static STARTED: OnceLock<Instant> = OnceLock::new();

/// `/healthz` body: liveness, the workspace version, and whole seconds
/// since the first [`serve_metrics`] call (`0` before one).
fn healthz_body() -> String {
    let uptime = STARTED.get().map_or(0, |t| t.elapsed().as_secs());
    format!(
        "ok\nversion={}\nuptime_seconds={uptime}\n",
        env!("CARGO_PKG_VERSION")
    )
}

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_TICK: Duration = Duration::from_millis(25);

/// Per-request socket deadline so a stalled client cannot wedge the loop.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// A running `/metrics` listener; shut down explicitly or on drop.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (useful when the caller asked for port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins its thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9184`) and serves `GET /metrics` from
/// `registry` until shutdown. Returns once the listener is bound, so a
/// scrape issued after this call succeeds.
pub fn serve_metrics(addr: &str, registry: Arc<Registry>) -> std::io::Result<MetricsServer> {
    STARTED.get_or_init(Instant::now);
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let bound = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let thread = std::thread::Builder::new()
        .name("obs-metrics-http".to_string())
        .spawn(move || accept_loop(listener, registry, flag))?;
    Ok(MetricsServer {
        addr: bound,
        shutdown,
        thread: Some(thread),
    })
}

fn accept_loop(listener: TcpListener, registry: Arc<Registry>, shutdown: Arc<AtomicBool>) {
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serve inline: scrapes are rare and the response is one
                // buffered write, so a worker thread would be overkill.
                let _ = handle(stream, &registry);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_TICK);
            }
            Err(_) => std::thread::sleep(ACCEPT_TICK),
        }
    }
}

fn handle(mut stream: TcpStream, registry: &Registry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    stream.set_nonblocking(false)?;
    let mut buf = [0u8; 1024];
    let mut filled = 0usize;
    // Read until the end of the request line; ignore any headers.
    loop {
        if filled == buf.len() {
            break;
        }
        let n = stream.read(&mut buf[filled..])?;
        if n == 0 {
            break;
        }
        filled += n;
        if buf[..filled].contains(&b'\n') {
            break;
        }
    }
    let request_line = match std::str::from_utf8(&buf[..filled]) {
        Ok(s) => s.lines().next().unwrap_or(""),
        Err(_) => "",
    };
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain", "method not allowed\n".to_string())
    } else {
        let query = path.split_once('?').map(|(_, q)| q).unwrap_or("");
        match path.split('?').next().unwrap_or("") {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                registry.render(),
            ),
            "/" | "/healthz" => ("200 OK", "text/plain", healthz_body()),
            "/trace" => {
                // `?ms=N` bounds the dump to the last N milliseconds.
                let window_ns = query
                    .split('&')
                    .find_map(|kv| kv.strip_prefix("ms="))
                    .and_then(|v| v.parse::<u64>().ok())
                    .map(|ms| ms.saturating_mul(1_000_000));
                (
                    "200 OK",
                    "application/json",
                    crate::trace::dump_chrome_json(window_ns),
                )
            }
            _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
        }
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::promtext::Exposition;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").unwrap();
        (head.lines().next().unwrap().to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_and_404s() {
        let reg = Arc::new(Registry::new("t"));
        reg.counter("ok_total", "Oks", || 11);
        let server = serve_metrics("127.0.0.1:0", Arc::clone(&reg)).unwrap();
        let addr = server.addr();

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, "HTTP/1.0 200 OK");
        let doc = Exposition::parse_validated(&body).unwrap();
        assert_eq!(doc.value("t_ok_total"), Some(11.0));

        let (status, _) = get(addr, "/nope");
        assert_eq!(status, "HTTP/1.0 404 Not Found");

        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, "HTTP/1.0 200 OK");
        let mut lines = body.lines();
        assert_eq!(lines.next(), Some("ok"));
        assert_eq!(
            lines.next(),
            Some(format!("version={}", env!("CARGO_PKG_VERSION")).as_str())
        );
        let uptime = lines.next().unwrap();
        assert!(uptime.starts_with("uptime_seconds="), "got {uptime:?}");
        uptime["uptime_seconds=".len()..].parse::<u64>().unwrap();

        server.shutdown();
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }

    #[test]
    fn serves_trace_json() {
        crate::trace::init(64);
        crate::trace::set_enabled(true);
        crate::trace::instant(crate::trace::Stage::Accept, 0xbeef, 0, 0, 0);
        let reg = Arc::new(Registry::new("t"));
        let server = serve_metrics("127.0.0.1:0", Arc::clone(&reg)).unwrap();
        let addr = server.addr();

        let (status, body) = get(addr, "/trace");
        assert_eq!(status, "HTTP/1.0 200 OK");
        assert!(body.starts_with("{\"traceEvents\":["));
        assert!(body.contains("\"name\":\"accept\""));

        // A zero-millisecond window keeps metadata but drops old events.
        std::thread::sleep(Duration::from_millis(5));
        let (status, body) = get(addr, "/trace?ms=0");
        assert_eq!(status, "HTTP/1.0 200 OK");
        assert!(body.contains("\"traceEvents\""));
        assert!(!body.contains(&format!("\"trace\":{}", 0xbeef)));
        server.shutdown();
    }
}
