//! Application 1 (§1): **selective dual-path execution**.
//!
//! After a low-confidence branch prediction, fork a second execution thread
//! down the non-predicted path; if the prediction turns out wrong, the
//! machine switches to the alternate thread instead of paying the full
//! misprediction penalty. Resources allow only a limited number of live
//! forks, so forking after *every* branch is impossible — the confidence
//! signal decides where the scarce fork slots go.
//!
//! The model is a cost model, not a cycle-accurate pipeline: each dynamic
//! branch contributes its fetch work, each uncovered misprediction a flush
//! penalty, each fork a fixed dual-fetch overhead. That is the level at
//! which the paper argues the application ("if we fork a dual thread
//! following 20 percent of the conditional branch predictions, we can
//! capture over 80 percent of the mispredictions").

use cira_core::ConfidenceEstimator;
use cira_predictor::{BranchPredictor, HistoryRegister};
use cira_trace::BranchRecord;

/// Cost parameters of the dual-path machine model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DualPathConfig {
    /// Cycles of useful work per dynamic branch (inter-branch run length).
    pub cycles_per_branch: f64,
    /// Flush penalty of an uncovered misprediction, in cycles.
    pub mispredict_penalty: f64,
    /// Extra cycles of fetch/execute bandwidth consumed per fork.
    pub fork_overhead: f64,
    /// Maximum simultaneous alternate-path threads (the paper limits the
    /// machine to two threads total, i.e. one fork).
    pub max_live_forks: u32,
    /// Branches until a fork resolves and its slot frees.
    pub fork_resolve_branches: u32,
}

impl Default for DualPathConfig {
    fn default() -> Self {
        Self {
            cycles_per_branch: 5.0,
            mispredict_penalty: 12.0,
            fork_overhead: 1.5,
            max_live_forks: 1,
            fork_resolve_branches: 2,
        }
    }
}

/// Outcome of a dual-path simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DualPathReport {
    /// Dynamic branches simulated.
    pub branches: u64,
    /// Total mispredictions of the underlying predictor.
    pub mispredicts: u64,
    /// Forks issued (low-confidence predictions with a free slot).
    pub forks: u64,
    /// Mispredictions covered by a live fork (penalty avoided).
    pub covered_mispredicts: u64,
    /// Forks whose slot was busy when requested (lost opportunities).
    pub fork_slot_misses: u64,
    /// Cycles of the baseline machine (no forking).
    pub baseline_cycles: f64,
    /// Cycles of the dual-path machine.
    pub dual_path_cycles: f64,
}

impl DualPathReport {
    /// Fraction of all predictions that triggered a fork.
    pub fn fork_rate(&self) -> f64 {
        ratio(self.forks, self.branches)
    }

    /// Fraction of mispredictions covered by a fork.
    pub fn coverage(&self) -> f64 {
        ratio(self.covered_mispredicts, self.mispredicts)
    }

    /// Baseline cycles / dual-path cycles (> 1 means forking won).
    pub fn speedup(&self) -> f64 {
        if self.dual_path_cycles > 0.0 {
            self.baseline_cycles / self.dual_path_cycles
        } else {
            1.0
        }
    }
}

fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

/// Runs the dual-path model over a trace.
///
/// # Examples
///
/// ```
/// use cira_apps::dual_path::{simulate_dual_path, DualPathConfig};
/// use cira_core::one_level::ResettingConfidence;
/// use cira_core::{IndexSpec, LowRule, ThresholdEstimator};
/// use cira_predictor::Gshare;
/// use cira_trace::suite::ibs_like_suite;
///
/// let bench = &ibs_like_suite()[0];
/// let mut predictor = Gshare::new(12, 12);
/// let mech = ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(12));
/// let mut est = ThresholdEstimator::new(mech, LowRule::KeyBelow(16));
/// let report = simulate_dual_path(
///     bench.walker().take(50_000),
///     &mut predictor,
///     &mut est,
///     DualPathConfig::default(),
/// );
/// assert!(report.speedup() > 1.0); // forking on low confidence pays off
/// ```
pub fn simulate_dual_path<P, E, T>(
    trace: T,
    predictor: &mut P,
    estimator: &mut E,
    config: DualPathConfig,
) -> DualPathReport
where
    P: BranchPredictor,
    E: ConfidenceEstimator,
    T: IntoIterator<Item = BranchRecord>,
{
    let mut bhr = HistoryRegister::new(64);
    let mut report = DualPathReport::default();
    // Live forks, as branches-remaining-until-resolution.
    let mut live: Vec<u32> = Vec::new();
    for r in trace {
        let h = bhr.value();
        let predicted = predictor.predict(r.pc, h);
        let correct = predicted == r.taken;
        let confidence = estimator.estimate(r.pc, h);

        report.branches += 1;
        report.baseline_cycles += config.cycles_per_branch;
        report.dual_path_cycles += config.cycles_per_branch;

        // Age out resolved forks.
        live.retain_mut(|left| {
            *left -= 1;
            *left > 0
        });

        let mut forked = false;
        if confidence.is_low() {
            if (live.len() as u32) < config.max_live_forks {
                live.push(config.fork_resolve_branches);
                report.forks += 1;
                report.dual_path_cycles += config.fork_overhead;
                forked = true;
            } else {
                report.fork_slot_misses += 1;
            }
        }

        if !correct {
            report.mispredicts += 1;
            report.baseline_cycles += config.mispredict_penalty;
            if forked {
                // The alternate path is already fetching: the flush penalty
                // is avoided (the fork's overhead was already charged).
                report.covered_mispredicts += 1;
            } else {
                report.dual_path_cycles += config.mispredict_penalty;
            }
        }

        estimator.update(r.pc, h, correct);
        predictor.update(r.pc, h, r.taken);
        bhr.push(r.taken);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cira_core::one_level::ResettingConfidence;
    use cira_core::{IndexSpec, LowRule, ThresholdEstimator};
    use cira_predictor::Gshare;
    use cira_trace::suite::ibs_like_suite;

    fn run(threshold: u64, max_forks: u32) -> DualPathReport {
        let bench = &ibs_like_suite()[0];
        let mut predictor = Gshare::new(12, 12);
        let mech = ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(12));
        let mut est = ThresholdEstimator::new(mech, LowRule::KeyBelow(threshold));
        simulate_dual_path(
            bench.walker().take(60_000),
            &mut predictor,
            &mut est,
            DualPathConfig {
                max_live_forks: max_forks,
                ..DualPathConfig::default()
            },
        )
    }

    #[test]
    fn forking_on_low_confidence_beats_baseline() {
        // A selective threshold: fork only right after recent mispredictions.
        let report = run(4, 1);
        assert!(report.mispredicts > 0);
        assert!(report.forks > 0);
        assert!(report.coverage() > 0.25, "coverage {}", report.coverage());
        assert!(report.speedup() > 1.0, "speedup {}", report.speedup());
    }

    #[test]
    fn zero_threshold_never_forks() {
        let report = run(0, 1);
        assert_eq!(report.forks, 0);
        assert_eq!(report.covered_mispredicts, 0);
        assert!((report.speedup() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_fork_slots_cover_more() {
        let one = run(16, 1);
        let four = run(16, 4);
        assert!(four.coverage() >= one.coverage());
        assert!(four.forks >= one.forks);
    }

    #[test]
    fn aggressive_threshold_forks_more_but_wastes() {
        let tight = run(1, 1);
        let loose = run(16, 1);
        assert!(loose.fork_rate() > tight.fork_rate());
        // The tight threshold forks rarely but each fork is more likely
        // to cover a misprediction (higher precision).
        let tight_precision = ratio(tight.covered_mispredicts, tight.forks.max(1));
        let loose_precision = ratio(loose.covered_mispredicts, loose.forks.max(1));
        assert!(
            tight_precision > loose_precision,
            "tight {tight_precision} vs loose {loose_precision}"
        );
    }

    #[test]
    fn report_ratios_handle_empty() {
        let r = DualPathReport::default();
        assert_eq!(r.fork_rate(), 0.0);
        assert_eq!(r.coverage(), 0.0);
        assert_eq!(r.speedup(), 1.0);
    }
}
