//! # cira-apps
//!
//! The four applications of branch confidence that motivate the paper
//! (§1), each built as a simulation model on the `cira` stack:
//!
//! 1. [`dual_path`] — selective dual-path execution: fork an alternate
//!    thread after low-confidence predictions only.
//! 2. [`smt_fetch`] — SMT fetch gating: give fetch priority to threads
//!    whose outstanding predictions are high-confidence.
//! 3. [`hybrid_selector`] — a hybrid-predictor selector driven by explicit
//!    per-component confidence instead of an ad-hoc chooser.
//! 4. [`reverser`] — invert predictions whose estimated accuracy is below
//!    50%.
//!
//! Plus the canonical follow-on that §6's "we are currently investigating"
//! grew into:
//!
//! 5. [`pipeline`] — pipeline gating (Manne/Klauser/Grunwald, ISCA 1998):
//!    stall fetch behind too many unresolved low-confidence branches,
//!    trading a little IPC for a large cut in wasted wrong-path work.
//!
//! These are *models* in the sense the paper uses them: cost accounting
//! over a branch trace, precise enough to compare policies, not
//! cycle-accurate pipelines. The paper explicitly defers detailed
//! application studies to follow-on work ("a performance/simulation model
//! of the application … would have to be used to determine actual
//! performance impact", §5.3); these modules are that starting point.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dual_path;
pub mod hybrid_selector;
pub mod pipeline;
pub mod reverser;
pub mod smt_fetch;

pub use dual_path::{simulate_dual_path, DualPathConfig, DualPathReport};
pub use hybrid_selector::ConfidenceSelector;
pub use pipeline::{simulate_pipeline, GatePolicy, PipelineConfig, PipelineReport};
pub use reverser::{calibrate_reversal_keys, simulate_reverser, ReverserReport};
pub use smt_fetch::{simulate_smt_fetch, FetchPolicy, SmtConfig, SmtReport, ThreadSpec};
