//! Application 3 (§1): a **confidence-driven hybrid predictor selector**.
//!
//! A McFarling combining predictor selects between two component
//! predictors with an ad-hoc chooser table. The paper suggests that
//! explicit confidence mechanisms — one per component, each tracking its
//! component's correctness history — could make a more systematic
//! selector: use whichever component currently has the higher confidence.
//!
//! [`ConfidenceSelector`] implements that design with a resetting-counter
//! table per component, and is directly comparable against
//! [`Hybrid`](cira_predictor::Hybrid) and the raw components.

use cira_core::one_level::ResettingConfidence;
use cira_core::{ConfidenceMechanism, IndexSpec, InitPolicy};
use cira_predictor::BranchPredictor;

/// Two predictors plus a confidence mechanism per component; predictions
/// come from the component whose confidence counter is higher.
///
/// Ties go to the first component (conventionally the stronger one).
///
/// # Examples
///
/// ```
/// use cira_apps::hybrid_selector::ConfidenceSelector;
/// use cira_predictor::{Bimodal, BranchPredictor, Gshare};
///
/// let mut p = ConfidenceSelector::new(Gshare::new(10, 10), Bimodal::new(10), 10);
/// p.update(0x40, 0, true);
/// let _ = p.predict(0x40, 0);
/// ```
#[derive(Debug, Clone)]
pub struct ConfidenceSelector<A, B> {
    first: A,
    second: B,
    conf_first: ResettingConfidence,
    conf_second: ResettingConfidence,
}

impl<A: BranchPredictor, B: BranchPredictor> ConfidenceSelector<A, B> {
    /// Creates a selector whose per-component confidence tables have
    /// `2^table_bits` resetting counters (0..=16) indexed by PC⊕BHR.
    ///
    /// # Panics
    ///
    /// Panics if `table_bits` is outside `1..=28`.
    pub fn new(first: A, second: B, table_bits: u32) -> Self {
        Self {
            first,
            second,
            conf_first: ResettingConfidence::new(
                IndexSpec::pc_xor_bhr(table_bits),
                16,
                InitPolicy::AllOnes,
            ),
            conf_second: ResettingConfidence::new(
                IndexSpec::pc_xor_bhr(table_bits),
                16,
                InitPolicy::AllOnes,
            ),
        }
    }

    /// Borrows the first component.
    pub fn first(&self) -> &A {
        &self.first
    }

    /// Borrows the second component.
    pub fn second(&self) -> &B {
        &self.second
    }

    /// Whether the selector currently prefers the first component for this
    /// branch.
    pub fn selects_first(&self, pc: u64, bhr: u64) -> bool {
        self.conf_first.read_key(pc, bhr) >= self.conf_second.read_key(pc, bhr)
    }
}

impl<A: BranchPredictor, B: BranchPredictor> BranchPredictor for ConfidenceSelector<A, B> {
    fn predict(&self, pc: u64, bhr: u64) -> bool {
        if self.selects_first(pc, bhr) {
            self.first.predict(pc, bhr)
        } else {
            self.second.predict(pc, bhr)
        }
    }

    fn update(&mut self, pc: u64, bhr: u64, taken: bool) {
        let c1 = self.first.predict(pc, bhr) == taken;
        let c2 = self.second.predict(pc, bhr) == taken;
        self.conf_first.update(pc, bhr, c1);
        self.conf_second.update(pc, bhr, c2);
        self.first.update(pc, bhr, taken);
        self.second.update(pc, bhr, taken);
    }

    fn describe(&self) -> String {
        format!(
            "confidence-selector({} | {})",
            self.first.describe(),
            self.second.describe()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cira_analysis::runner::run_predictor;
    use cira_predictor::{Bimodal, Gshare, Hybrid, StaticDirection};
    use cira_trace::suite::ibs_like_suite;

    #[test]
    fn selector_migrates_to_correct_component() {
        let mut p = ConfidenceSelector::new(
            StaticDirection::always_not_taken(),
            StaticDirection::always_taken(),
            8,
        );
        for _ in 0..8 {
            p.update(0x40, 0, true);
        }
        assert!(!p.selects_first(0x40, 0));
        assert!(p.predict(0x40, 0));
    }

    #[test]
    fn selector_competitive_with_mcfarling_chooser() {
        let bench = &ibs_like_suite()[0];
        let n = 200_000;
        let sel = run_predictor(
            bench.walker().take(n),
            &mut ConfidenceSelector::new(Gshare::new(12, 12), Bimodal::new(12), 12),
        );
        let mcf = run_predictor(
            bench.walker().take(n),
            &mut Hybrid::new(Gshare::new(12, 12), Bimodal::new(12), 12),
        );
        // The confidence selector should be in the same accuracy class as
        // the ad-hoc chooser (the paper conjectures it can be better).
        assert!(
            sel.miss_rate() < mcf.miss_rate() * 1.15,
            "selector {} vs chooser {}",
            sel.miss_rate(),
            mcf.miss_rate()
        );
    }

    #[test]
    fn selector_no_worse_than_weaker_component() {
        let bench = &ibs_like_suite()[2];
        let n = 150_000;
        let sel = run_predictor(
            bench.walker().take(n),
            &mut ConfidenceSelector::new(Gshare::new(12, 12), Bimodal::new(12), 12),
        );
        let bim = run_predictor(bench.walker().take(n), &mut Bimodal::new(12));
        assert!(sel.miss_rate() <= bim.miss_rate() * 1.02);
    }

    #[test]
    fn describe_names_components() {
        let p = ConfidenceSelector::new(Gshare::new(8, 8), Bimodal::new(8), 8);
        assert!(p.describe().contains("gshare(8,8)"));
        assert!(p.describe().contains("bimodal(8)"));
        assert_eq!(p.first().table_bits(), 8);
        assert_eq!(p.second().bits(), 8);
    }
}
