//! Pipeline gating — the canonical follow-on application of this paper's
//! confidence estimators (Manne, Klauser & Grunwald, ISCA 1998, build
//! directly on the CIR/resetting-counter mechanisms introduced here).
//!
//! A speculative processor keeps fetching past unresolved branches; when a
//! prediction is wrong, everything fetched behind it is thrown away —
//! wasted work that costs energy. *Gating* stalls fetch whenever the number
//! of unresolved **low-confidence** branches reaches a threshold: little
//! performance is lost (those paths were likely wrong anyway) while
//! wrong-path work drops sharply.
//!
//! This module implements a compact cycle-level model: an in-order fetch
//! engine, a branch-resolution pipeline of configurable depth, full flush
//! and refetch on misprediction, and a [`GatePolicy`]. It reports IPC and
//! wasted (wrong-path) fetch work so the energy/performance trade-off of
//! gating is directly visible.

use std::collections::VecDeque;

use cira_core::ConfidenceEstimator;
use cira_predictor::{BranchPredictor, HistoryRegister};
use cira_trace::BranchRecord;

/// When to stall instruction fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatePolicy {
    /// Never stall — the conventional speculative baseline.
    NeverGate,
    /// Stall while at least `low_confidence_limit` unresolved
    /// low-confidence branches are in flight (Manne et al.'s policy).
    GateOnLowConfidence {
        /// Unresolved low-confidence branches that trigger the gate.
        low_confidence_limit: u32,
    },
    /// Stall while any branch at all is unresolved — no speculation
    /// (the lower bound on wasted work, upper bound on lost cycles).
    GateAlways,
}

/// Machine parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Non-branch instructions accompanying each branch (run length).
    pub run_length: u32,
    /// Cycles from fetching a branch to resolving it.
    pub resolve_latency: u32,
    /// Cycles of refetch delay after a misprediction flush.
    pub flush_penalty: u32,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            fetch_width: 4,
            run_length: 5,
            resolve_latency: 8,
            flush_penalty: 3,
        }
    }
}

/// Result of a pipeline-gating simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineReport {
    /// Cycles simulated until the trace was consumed.
    pub cycles: u64,
    /// Instructions committed (correct path only).
    pub committed_instructions: u64,
    /// Instructions fetched on wrong paths and discarded.
    pub wasted_instructions: u64,
    /// Fetch cycles lost to gating stalls.
    pub gated_cycles: u64,
    /// Branches executed.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
}

impl PipelineReport {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_instructions as f64 / self.cycles as f64
        }
    }

    /// Wasted work as a fraction of all fetched instructions — the energy
    /// proxy the gating literature reports ("extra work").
    pub fn extra_work(&self) -> f64 {
        let fetched = self.committed_instructions + self.wasted_instructions;
        if fetched == 0 {
            0.0
        } else {
            self.wasted_instructions as f64 / fetched as f64
        }
    }
}

struct InFlight {
    resolve_at: u64,
    mispredicted: bool,
    low_confidence: bool,
}

/// Runs the pipeline model over a trace.
///
/// The trace supplies the *correct-path* branch sequence. Wrong-path fetch
/// is modeled by charging fetched instructions as wasted between a
/// mispredicted branch's fetch and its resolution (plus the flush
/// penalty), without consuming correct-path trace records.
///
/// # Examples
///
/// ```
/// use cira_apps::pipeline::{simulate_pipeline, GatePolicy, PipelineConfig};
/// use cira_core::one_level::ResettingConfidence;
/// use cira_core::{IndexSpec, LowRule, ThresholdEstimator};
/// use cira_predictor::Gshare;
/// use cira_trace::suite::ibs_like_suite;
///
/// let bench = &ibs_like_suite()[3];
/// let mut predictor = Gshare::new(12, 12);
/// let mut est = ThresholdEstimator::new(
///     ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(12)),
///     LowRule::KeyBelow(8),
/// );
/// let report = simulate_pipeline(
///     bench.walker().take(20_000),
///     &mut predictor,
///     &mut est,
///     GatePolicy::GateOnLowConfidence { low_confidence_limit: 2 },
///     PipelineConfig::default(),
/// );
/// assert!(report.ipc() > 0.0);
/// ```
pub fn simulate_pipeline<P, E, T>(
    trace: T,
    predictor: &mut P,
    estimator: &mut E,
    policy: GatePolicy,
    config: PipelineConfig,
) -> PipelineReport
where
    P: BranchPredictor,
    E: ConfidenceEstimator,
    T: IntoIterator<Item = BranchRecord>,
{
    let mut trace = trace.into_iter();
    let mut bhr = HistoryRegister::new(64);
    let mut report = PipelineReport::default();
    let mut in_flight: VecDeque<InFlight> = VecDeque::new();
    let mut cycle: u64 = 0;
    // Fetch is blocked until this cycle (set by misprediction flushes).
    let mut fetch_ready_at: u64 = 0;
    let mut trace_done = false;

    while !trace_done || !in_flight.is_empty() {
        cycle += 1;

        // Resolve branches whose latency elapsed. A mispredicted branch
        // squashes everything fetched behind it: those younger in-flight
        // branches disappear and their work (plus the wrong-path run
        // already charged as wasted at fetch time) is discarded.
        while let Some(front) = in_flight.front() {
            if front.resolve_at > cycle {
                break;
            }
            let resolved = in_flight.pop_front().expect("nonempty");
            if resolved.mispredicted {
                // Squash younger in-flight work.
                for squashed in in_flight.drain(..) {
                    let _ = squashed;
                    report.wasted_instructions += (config.run_length + 1) as u64;
                }
                fetch_ready_at = cycle + config.flush_penalty as u64;
            }
        }

        if cycle < fetch_ready_at {
            continue;
        }

        // Gating decision for this cycle. The machine cannot tell whether
        // it is on a wrong path — that is the whole point: the confidence
        // estimate is the *proxy* for that knowledge, and stalling while
        // low-confidence branches are unresolved is precisely what saves
        // the wrong-path work.
        let wrong_path = in_flight.iter().any(|b| b.mispredicted);
        let gated = match policy {
            GatePolicy::NeverGate => false,
            GatePolicy::GateAlways => !in_flight.is_empty(),
            GatePolicy::GateOnLowConfidence {
                low_confidence_limit,
            } => {
                let low = in_flight.iter().filter(|b| b.low_confidence).count() as u32;
                low >= low_confidence_limit
            }
        };
        if gated {
            report.gated_cycles += 1;
            continue;
        }

        // Fetch one run (branch + run_length instructions); width limits
        // how many cycles a run occupies, folded into the accounting by
        // advancing the cycle counter fractionally via extra cycles.
        let run = (config.run_length + 1) as u64;
        let fetch_cycles = run.div_ceil(config.fetch_width as u64).max(1);
        cycle += fetch_cycles - 1;

        if wrong_path {
            // Fetching down a wrong path: work is wasted; the correct-path
            // trace is not consumed.
            report.wasted_instructions += run;
            continue;
        }

        let Some(r) = trace.next() else {
            trace_done = true;
            continue;
        };
        let h = bhr.value();
        let predicted = predictor.predict(r.pc, h);
        let correct = predicted == r.taken;
        let confidence = estimator.estimate(r.pc, h);
        estimator.update(r.pc, h, correct);
        predictor.update(r.pc, h, r.taken);
        bhr.push(r.taken);

        report.branches += 1;
        report.mispredicts += !correct as u64;
        report.committed_instructions += run;
        in_flight.push_back(InFlight {
            resolve_at: cycle + config.resolve_latency as u64,
            mispredicted: !correct,
            low_confidence: confidence.is_low(),
        });
    }
    report.cycles = cycle;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cira_core::one_level::ResettingConfidence;
    use cira_core::{IndexSpec, LowRule, ThresholdEstimator};
    use cira_predictor::Gshare;
    use cira_trace::suite::ibs_like_suite;

    fn run(policy: GatePolicy) -> PipelineReport {
        let bench = &ibs_like_suite()[0]; // gcc: plenty of mispredictions
        let mut predictor = Gshare::new(12, 12);
        let mut est = ThresholdEstimator::new(
            ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(12)),
            LowRule::KeyBelow(8),
        );
        simulate_pipeline(
            bench.walker().take(40_000),
            &mut predictor,
            &mut est,
            policy,
            PipelineConfig::default(),
        )
    }

    #[test]
    fn accounting_is_consistent() {
        let r = run(GatePolicy::NeverGate);
        assert_eq!(r.branches, 40_000);
        assert!(r.mispredicts > 0);
        assert_eq!(r.committed_instructions, r.branches * 6);
        assert!(r.cycles > 0);
        assert!(r.ipc() > 0.0);
    }

    #[test]
    fn gating_reduces_wasted_work() {
        let baseline = run(GatePolicy::NeverGate);
        let gated = run(GatePolicy::GateOnLowConfidence {
            low_confidence_limit: 1,
        });
        assert!(
            gated.extra_work() < baseline.extra_work(),
            "gated {} vs baseline {}",
            gated.extra_work(),
            baseline.extra_work()
        );
        assert!(gated.gated_cycles > 0);
    }

    #[test]
    fn gating_costs_little_performance() {
        let baseline = run(GatePolicy::NeverGate);
        let gated = run(GatePolicy::GateOnLowConfidence {
            low_confidence_limit: 2,
        });
        // The canonical result: most of the waste is cut (previous test)
        // while IPC stays close to the speculative baseline.
        assert!(
            gated.ipc() > 0.8 * baseline.ipc(),
            "gated ipc {} vs baseline {}",
            gated.ipc(),
            baseline.ipc()
        );
    }

    #[test]
    fn never_speculating_is_waste_free_but_slow() {
        let baseline = run(GatePolicy::NeverGate);
        let never = run(GatePolicy::GateAlways);
        assert_eq!(never.wasted_instructions, 0);
        assert!(never.ipc() < baseline.ipc());
    }

    #[test]
    fn policies_order_waste_monotonically() {
        let never = run(GatePolicy::GateAlways);
        let tight = run(GatePolicy::GateOnLowConfidence {
            low_confidence_limit: 1,
        });
        let loose = run(GatePolicy::GateOnLowConfidence {
            low_confidence_limit: 4,
        });
        let open = run(GatePolicy::NeverGate);
        assert!(never.wasted_instructions <= tight.wasted_instructions);
        assert!(tight.wasted_instructions <= loose.wasted_instructions);
        assert!(loose.wasted_instructions <= open.wasted_instructions);
    }

    #[test]
    fn empty_trace_terminates() {
        let mut predictor = Gshare::new(10, 10);
        let mut est = ThresholdEstimator::new(
            ResettingConfidence::paper_default(IndexSpec::pc(10)),
            LowRule::KeyBelow(8),
        );
        let r = simulate_pipeline(
            std::iter::empty(),
            &mut predictor,
            &mut est,
            GatePolicy::NeverGate,
            PipelineConfig::default(),
        );
        assert_eq!(r.branches, 0);
        assert_eq!(r.committed_instructions, 0);
        assert_eq!(r.extra_work(), 0.0);
    }

    #[test]
    fn report_ratios_handle_zero() {
        let r = PipelineReport::default();
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.extra_work(), 0.0);
    }
}
