//! Application 4 (§1): the **branch prediction reverser**.
//!
//! If a confidence mechanism can identify predictions whose accuracy is
//! below 50%, inverting those predictions raises overall accuracy. The
//! paper is cautious about this application: the threshold must sit at
//! ≈50% *accuracy*, and the open question is whether predictor + reverser
//! beats simply building a better predictor.
//!
//! [`calibrate_reversal_keys`] performs the profiling step (find the keys
//! whose measured misprediction rate exceeds 50%), and
//! [`simulate_reverser`] measures the accuracy effect of reversing them.

use std::collections::HashSet;

use cira_analysis::runner::collect_mechanism_buckets;
use cira_analysis::BucketStats;
use cira_core::ConfidenceMechanism;
use cira_predictor::{BranchPredictor, HistoryRegister};
use cira_trace::BranchRecord;

/// Result of a reverser run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReverserReport {
    /// Dynamic branches simulated.
    pub branches: u64,
    /// Mispredictions of the plain predictor.
    pub base_mispredicts: u64,
    /// Mispredictions after reversal.
    pub reversed_mispredicts: u64,
    /// Predictions that were reversed.
    pub reversals: u64,
    /// Reversals that fixed a would-be misprediction.
    pub good_reversals: u64,
    /// Reversals that broke a would-be correct prediction.
    pub bad_reversals: u64,
}

impl ReverserReport {
    /// Misprediction rate without reversal.
    pub fn base_rate(&self) -> f64 {
        ratio(self.base_mispredicts, self.branches)
    }

    /// Misprediction rate with reversal.
    pub fn reversed_rate(&self) -> f64 {
        ratio(self.reversed_mispredicts, self.branches)
    }

    /// Net mispredictions removed (negative if reversal hurt).
    pub fn net_gain(&self) -> i64 {
        self.base_mispredicts as i64 - self.reversed_mispredicts as i64
    }
}

fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

/// Profiling pass: runs the mechanism over a trace and returns the keys
/// whose misprediction rate exceeds `threshold` (0.5 for the reverser),
/// together with the bucket statistics.
pub fn calibrate_reversal_keys<P, M, T>(
    trace: T,
    predictor: &mut P,
    mechanism: &mut M,
    threshold: f64,
) -> (HashSet<u64>, BucketStats)
where
    P: BranchPredictor,
    M: ConfidenceMechanism,
    T: IntoIterator<Item = BranchRecord>,
{
    let stats = collect_mechanism_buckets(trace, predictor, mechanism);
    let keys = stats
        .iter()
        .filter(|(_, cell)| cell.miss_rate() > threshold)
        .map(|(k, _)| k)
        .collect();
    (keys, stats)
}

/// Measurement pass: re-runs a (fresh) predictor and mechanism, inverting
/// every prediction whose current key is in `reverse_keys`.
pub fn simulate_reverser<P, M, T>(
    trace: T,
    predictor: &mut P,
    mechanism: &mut M,
    reverse_keys: &HashSet<u64>,
) -> ReverserReport
where
    P: BranchPredictor,
    M: ConfidenceMechanism,
    T: IntoIterator<Item = BranchRecord>,
{
    let mut bhr = HistoryRegister::new(64);
    let mut report = ReverserReport::default();
    for r in trace {
        let h = bhr.value();
        let predicted = predictor.predict(r.pc, h);
        let key = mechanism.read_key(r.pc, h);
        let reverse = reverse_keys.contains(&key);
        let emitted = predicted != reverse;
        let base_correct = predicted == r.taken;
        let emitted_correct = emitted == r.taken;

        report.branches += 1;
        report.base_mispredicts += !base_correct as u64;
        report.reversed_mispredicts += !emitted_correct as u64;
        if reverse {
            report.reversals += 1;
            if !base_correct {
                report.good_reversals += 1;
            } else {
                report.bad_reversals += 1;
            }
        }

        // The confidence structures track the *predictor's* correctness,
        // exactly as in the non-reversing configuration.
        mechanism.update(r.pc, h, base_correct);
        predictor.update(r.pc, h, r.taken);
        bhr.push(r.taken);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cira_core::one_level::{OneLevelCir, ResettingConfidence};
    use cira_core::{IndexSpec, InitPolicy};
    use cira_predictor::{Gshare, StaticDirection};
    use cira_trace::suite::ibs_like_suite;

    #[test]
    fn calibration_finds_high_miss_keys() {
        // An always-taken predictor on an alternating branch: every other
        // prediction wrong; a per-entry CIR mechanism splits the stream
        // into keys with very different rates.
        let trace: Vec<_> = (0..4000u64)
            .map(|i| BranchRecord::new(0x40, i % 2 == 0))
            .collect();
        let mut mech = OneLevelCir::new(IndexSpec::bhr(8), 8, InitPolicy::AllZeros);
        let (keys, stats) = calibrate_reversal_keys(
            trace.iter().copied(),
            &mut StaticDirection::always_taken(),
            &mut mech,
            0.5,
        );
        assert!((stats.miss_rate() - 0.5).abs() < 0.01);
        assert!(!keys.is_empty(), "some contexts must be >50% mispredicted");
    }

    #[test]
    fn reversal_helps_when_keys_are_reliable() {
        let trace: Vec<_> = (0..4000u64)
            .map(|i| BranchRecord::new(0x40, i % 2 == 0))
            .collect();
        let (keys, _) = calibrate_reversal_keys(
            trace.iter().copied(),
            &mut StaticDirection::always_taken(),
            &mut OneLevelCir::new(IndexSpec::bhr(8), 8, InitPolicy::AllZeros),
            0.5,
        );
        let report = simulate_reverser(
            trace.iter().copied(),
            &mut StaticDirection::always_taken(),
            &mut OneLevelCir::new(IndexSpec::bhr(8), 8, InitPolicy::AllZeros),
            &keys,
        );
        assert!(report.net_gain() > 0, "net gain {}", report.net_gain());
        assert!(report.reversed_rate() < report.base_rate());
        assert!(report.good_reversals > report.bad_reversals);
    }

    #[test]
    fn empty_key_set_changes_nothing() {
        let bench = &ibs_like_suite()[3];
        let mut predictor = Gshare::new(10, 10);
        let mut mech = ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(10));
        let report = simulate_reverser(
            bench.walker().take(20_000),
            &mut predictor,
            &mut mech,
            &HashSet::new(),
        );
        assert_eq!(report.reversals, 0);
        assert_eq!(report.base_mispredicts, report.reversed_mispredicts);
    }

    #[test]
    fn gshare_resetting_counters_rarely_cross_fifty_percent() {
        // The paper's caution: with a good predictor, even the lowest
        // counter bucket usually sits below 50% misprediction, so the
        // reverser finds little to reverse.
        let bench = &ibs_like_suite()[0];
        let mut predictor = Gshare::paper_small();
        let mut mech = ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(12));
        let (keys, stats) =
            calibrate_reversal_keys(bench.walker().take(100_000), &mut predictor, &mut mech, 0.5);
        let reversible: f64 = keys
            .iter()
            .filter_map(|k| stats.cell(*k))
            .map(|c| c.refs)
            .sum();
        assert!(
            reversible / stats.total_refs() < 0.05,
            "counter buckets above 50% should be rare: {}",
            reversible / stats.total_refs()
        );
    }

    #[test]
    fn report_ratios_handle_empty() {
        let r = ReverserReport::default();
        assert_eq!(r.base_rate(), 0.0);
        assert_eq!(r.reversed_rate(), 0.0);
        assert_eq!(r.net_gain(), 0);
    }
}
