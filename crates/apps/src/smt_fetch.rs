//! Application 2 (§1): **confidence-guided instruction fetch in SMT**.
//!
//! In a simultaneous-multithreading processor the fetch unit is a critical
//! shared resource (Tullsen et al., ISCA 1996). Fetching down a speculative
//! path that later turns out mispredicted wastes the slot; prioritizing
//! threads whose outstanding predictions are high-confidence reduces that
//! waste. This module models a W-wide fetch unit shared by N threads, each
//! driven by its own branch trace, predictor, and confidence estimator.
//!
//! Model: each fetch slot granted to a thread advances it by one fetch
//! block (one dynamic branch plus its run of instructions). A branch
//! resolves `resolve_delay` blocks after it is fetched; blocks fetched for
//! a thread while it has an unresolved *mispredicted* branch are wrong-path
//! work and are wasted. The policy chooses which threads fetch each cycle.

use std::collections::VecDeque;

use cira_core::{Confidence, ConfidenceEstimator};
use cira_predictor::{BranchPredictor, HistoryRegister};
use cira_trace::BranchRecord;

/// Fetch arbitration policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchPolicy {
    /// Rotate through threads regardless of speculation state.
    RoundRobin,
    /// Prefer threads with the fewest unresolved branches (ICOUNT-like).
    FewestOutstanding,
    /// Prefer threads with the fewest unresolved *low-confidence*
    /// branches — the paper's proposal.
    ConfidenceGated,
}

/// Configuration of the SMT fetch model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmtConfig {
    /// Fetch slots per cycle.
    pub fetch_width: u32,
    /// Blocks between fetching a branch and resolving it.
    pub resolve_delay: u32,
    /// Cycles to simulate.
    pub cycles: u64,
}

impl Default for SmtConfig {
    fn default() -> Self {
        Self {
            fetch_width: 4,
            resolve_delay: 6,
            cycles: 50_000,
        }
    }
}

/// Result of an SMT fetch simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmtReport {
    /// Total fetch slots granted.
    pub fetched_blocks: u64,
    /// Blocks that were on a correct path.
    pub useful_blocks: u64,
    /// Blocks fetched past an unresolved branch that proves mispredicted.
    pub wasted_blocks: u64,
    /// Fetch slots left idle (no eligible thread).
    pub idle_slots: u64,
}

impl SmtReport {
    /// Fraction of granted fetch slots that did useful work.
    pub fn useful_fraction(&self) -> f64 {
        if self.fetched_blocks == 0 {
            0.0
        } else {
            self.useful_blocks as f64 / self.fetched_blocks as f64
        }
    }

    /// Useful blocks per cycle across the machine.
    pub fn useful_throughput(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.useful_blocks as f64 / cycles as f64
        }
    }
}

struct Thread<'a> {
    trace: Box<dyn Iterator<Item = BranchRecord> + 'a>,
    predictor: Box<dyn BranchPredictor + 'a>,
    estimator: Box<dyn ConfidenceEstimator + 'a>,
    bhr: HistoryRegister,
    /// Unresolved branches: (blocks until resolution, mispredicted, low).
    outstanding: VecDeque<(u32, bool, Confidence)>,
    /// Set when an unresolved mispredicted branch exists: subsequent
    /// fetches are wrong-path until it resolves.
    exhausted: bool,
}

impl<'a> Thread<'a> {
    fn wrong_path(&self) -> bool {
        self.outstanding.iter().any(|&(_, miss, _)| miss)
    }

    fn low_count(&self) -> usize {
        self.outstanding
            .iter()
            .filter(|&&(_, _, c)| c.is_low())
            .count()
    }

    fn tick(&mut self) {
        for o in self.outstanding.iter_mut() {
            o.0 = o.0.saturating_sub(1);
        }
        while matches!(self.outstanding.front(), Some(&(0, _, _))) {
            self.outstanding.pop_front();
        }
    }

    /// Fetches one block; returns whether it was useful.
    fn fetch(&mut self, resolve_delay: u32) -> Option<bool> {
        if self.exhausted {
            return None;
        }
        let wrong = self.wrong_path();
        let Some(r) = self.trace.next() else {
            self.exhausted = true;
            return None;
        };
        let h = self.bhr.value();
        let predicted = self.predictor.predict(r.pc, h);
        let correct = predicted == r.taken;
        let confidence = self.estimator.estimate(r.pc, h);
        self.estimator.update(r.pc, h, correct);
        self.predictor.update(r.pc, h, r.taken);
        self.bhr.push(r.taken);
        self.outstanding
            .push_back((resolve_delay, !correct, confidence));
        // A block fetched while the thread is already beyond an unresolved
        // misprediction is wrong-path work.
        Some(!wrong)
    }
}

/// One SMT thread's inputs: a trace plus a fresh predictor and estimator.
pub struct ThreadSpec<'a> {
    /// The thread's branch stream.
    pub trace: Box<dyn Iterator<Item = BranchRecord> + 'a>,
    /// The thread's private branch predictor.
    pub predictor: Box<dyn BranchPredictor + 'a>,
    /// The thread's private confidence estimator.
    pub estimator: Box<dyn ConfidenceEstimator + 'a>,
}

impl std::fmt::Debug for ThreadSpec<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadSpec").finish_non_exhaustive()
    }
}

/// Simulates the shared fetch unit.
pub fn simulate_smt_fetch(
    threads: Vec<ThreadSpec<'_>>,
    policy: FetchPolicy,
    config: SmtConfig,
) -> SmtReport {
    let mut threads: Vec<Thread> = threads
        .into_iter()
        .map(|t| Thread {
            trace: t.trace,
            predictor: t.predictor,
            estimator: t.estimator,
            bhr: HistoryRegister::new(64),
            outstanding: VecDeque::new(),
            exhausted: false,
        })
        .collect();
    let mut report = SmtReport::default();
    let mut rr = 0usize;
    let n = threads.len();
    if n == 0 {
        report.idle_slots = config.cycles * config.fetch_width as u64;
        return report;
    }

    for _ in 0..config.cycles {
        for t in threads.iter_mut() {
            t.tick();
        }
        for _ in 0..config.fetch_width {
            // Rank eligible threads by the policy.
            let pick = match policy {
                FetchPolicy::RoundRobin => {
                    let start = rr;
                    rr = (rr + 1) % n;
                    (0..n)
                        .map(|i| (start + i) % n)
                        .find(|&i| !threads[i].exhausted)
                }
                FetchPolicy::FewestOutstanding => (0..n)
                    .filter(|&i| !threads[i].exhausted)
                    .min_by_key(|&i| (threads[i].outstanding.len(), i)),
                FetchPolicy::ConfidenceGated => (0..n)
                    .filter(|&i| !threads[i].exhausted)
                    .min_by_key(|&i| (threads[i].low_count(), threads[i].outstanding.len(), i)),
            };
            match pick {
                Some(i) => match threads[i].fetch(config.resolve_delay) {
                    Some(useful) => {
                        report.fetched_blocks += 1;
                        if useful {
                            report.useful_blocks += 1;
                        } else {
                            report.wasted_blocks += 1;
                        }
                    }
                    None => report.idle_slots += 1,
                },
                None => report.idle_slots += 1,
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cira_core::one_level::ResettingConfidence;
    use cira_core::{IndexSpec, LowRule, ThresholdEstimator};
    use cira_predictor::Gshare;
    use cira_trace::suite::ibs_like_suite;

    fn specs(n: usize) -> Vec<ThreadSpec<'static>> {
        let suite = ibs_like_suite();
        (0..n)
            .map(|i| {
                let bench = suite[i % suite.len()].clone();
                ThreadSpec {
                    trace: Box::new(bench.walker().take(1_000_000)),
                    predictor: Box::new(Gshare::new(12, 12)),
                    estimator: Box::new(ThresholdEstimator::new(
                        ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(12)),
                        LowRule::KeyBelow(8),
                    )),
                }
            })
            .collect()
    }

    fn run(policy: FetchPolicy) -> SmtReport {
        simulate_smt_fetch(
            specs(4),
            policy,
            SmtConfig {
                fetch_width: 4,
                resolve_delay: 6,
                cycles: 8_000,
            },
        )
    }

    #[test]
    fn accounting_is_consistent() {
        let r = run(FetchPolicy::RoundRobin);
        assert_eq!(r.useful_blocks + r.wasted_blocks, r.fetched_blocks);
        assert!(r.fetched_blocks > 0);
    }

    #[test]
    fn confidence_gating_reduces_waste() {
        let rr = run(FetchPolicy::RoundRobin);
        let gated = run(FetchPolicy::ConfidenceGated);
        assert!(
            gated.useful_fraction() > rr.useful_fraction(),
            "gated {} vs round-robin {}",
            gated.useful_fraction(),
            rr.useful_fraction()
        );
    }

    #[test]
    fn confidence_gating_beats_icount_on_waste() {
        let icount = run(FetchPolicy::FewestOutstanding);
        let gated = run(FetchPolicy::ConfidenceGated);
        assert!(
            gated.useful_fraction() >= icount.useful_fraction() * 0.98,
            "gated {} vs icount {}",
            gated.useful_fraction(),
            icount.useful_fraction()
        );
    }

    #[test]
    fn empty_machine_is_idle() {
        let r = simulate_smt_fetch(
            Vec::new(),
            FetchPolicy::RoundRobin,
            SmtConfig {
                cycles: 10,
                ..SmtConfig::default()
            },
        );
        assert_eq!(r.fetched_blocks, 0);
        assert_eq!(r.idle_slots, 40);
    }

    #[test]
    fn finite_trace_exhausts_cleanly() {
        let suite = ibs_like_suite();
        let spec = vec![ThreadSpec {
            trace: Box::new(suite[0].walker().take(100)),
            predictor: Box::new(Gshare::new(10, 10)),
            estimator: Box::new(ThresholdEstimator::new(
                ResettingConfidence::paper_default(IndexSpec::pc(10)),
                LowRule::KeyBelow(8),
            )),
        }];
        let r = simulate_smt_fetch(spec, FetchPolicy::RoundRobin, SmtConfig::default());
        assert_eq!(r.fetched_blocks, 100);
        assert!(r.idle_slots > 0);
    }

    #[test]
    fn throughput_metric() {
        let r = run(FetchPolicy::RoundRobin);
        assert!(r.useful_throughput(8_000) > 0.0);
        assert_eq!(SmtReport::default().useful_throughput(0), 0.0);
    }
}
