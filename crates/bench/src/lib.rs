//! # cira-bench
//!
//! Experiment harness for the `cira` reproduction: one binary per paper
//! figure/table (`fig02_static`, `fig05_one_level`, …, `table1_resetting`,
//! `calibration`) plus Criterion microbenches. This library crate holds the
//! small amount of shared runner plumbing.
//!
//! Binaries honour two environment variables:
//!
//! * `CIRA_TRACE_LEN` — dynamic branches simulated per benchmark
//!   (default 1,000,000).
//! * `CIRA_RESULTS_DIR` — where CSVs are written (default `results/`).

#![warn(missing_docs)]

use std::path::PathBuf;

/// Default dynamic branches simulated per benchmark.
pub const DEFAULT_TRACE_LEN: u64 = 1_000_000;

/// Trace length per benchmark: `CIRA_TRACE_LEN` or the default.
///
/// # Panics
///
/// Panics if the environment variable is set but not a positive integer.
pub fn trace_len() -> u64 {
    match std::env::var("CIRA_TRACE_LEN") {
        Ok(v) => v
            .parse::<u64>()
            .ok()
            .filter(|&n| n > 0)
            .unwrap_or_else(|| panic!("CIRA_TRACE_LEN must be a positive integer, got {v:?}")),
        Err(_) => DEFAULT_TRACE_LEN,
    }
}

/// The `rustc --version` string the bench binaries were compiled with,
/// captured by the build script — recorded in benchmark artifacts so a
/// number can always be traced back to its toolchain.
pub fn rustc_version() -> &'static str {
    env!("CIRA_RUSTC_VERSION")
}

/// Results directory: `CIRA_RESULTS_DIR` or `results/`.
pub fn results_dir() -> PathBuf {
    std::env::var_os("CIRA_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Standard experiment banner printed by every figure binary.
pub fn banner(experiment: &str, what: &str, len: u64) {
    println!("=== {experiment} ===");
    println!("{what}");
    println!("(IBS-like synthetic suite, {len} dynamic branches per benchmark)");
    println!();
}

use cira_analysis::export::{ascii_chart, coverage_summary, save_curves_csv};
use cira_analysis::{CoverageCurve, Engine, SuiteBuckets};
use cira_core::ConfidenceMechanism;
use cira_predictor::BranchPredictor;
use cira_trace::suite::Benchmark;

/// Runs a set of named mechanism configurations over the suite, prints the
/// paper-style report (coverage at 10/20/30% budgets plus an ASCII chart),
/// saves `results/<id>.csv`, and returns the per-series suite results.
pub fn run_figure<P>(
    id: &str,
    suite: &[Benchmark],
    len: u64,
    make_predictor: impl Fn() -> P + Sync,
    series: &[&str],
    make_mechanisms: impl Fn() -> Vec<Box<dyn ConfidenceMechanism>> + Sync,
    extra: &[(&str, CoverageCurve)],
) -> Vec<SuiteBuckets>
where
    P: BranchPredictor + Send,
{
    let results = Engine::global().run_suite_mechanisms(suite, len, make_predictor, make_mechanisms);
    assert_eq!(results.len(), series.len(), "one name per mechanism");
    let curves: Vec<(String, CoverageCurve)> = series
        .iter()
        .map(|n| n.to_string())
        .zip(results.iter().map(|r| r.curve()))
        .chain(extra.iter().map(|(n, c)| (n.to_string(), c.clone())))
        .collect();
    report_curves(id, &curves);
    results
}

/// Prints coverage summaries and an ASCII chart for named curves and saves
/// them to `results/<id>.csv`.
pub fn report_curves(id: &str, curves: &[(String, CoverageCurve)]) {
    let named: Vec<(&str, &CoverageCurve)> = curves.iter().map(|(n, c)| (n.as_str(), c)).collect();
    for (name, curve) in &named {
        println!("{}", coverage_summary(name, curve, 20.0));
        println!(
            "    at 10%: {:5.1}%   at 30%: {:5.1}%   at 50%: {:5.1}%",
            curve.coverage_at(10.0),
            curve.coverage_at(30.0),
            curve.coverage_at(50.0)
        );
    }
    println!();
    println!("{}", ascii_chart(&named, 72, 22));
    let path = results_dir().join(format!("{id}.csv"));
    match save_curves_csv(&path, &named) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => cira_obs::warn!("could not write results csv", path = path.display(), error = e),
    }
}

/// The zero-bucket statistics the paper quotes for CIR methods: the share
/// of references and mispredictions seen at the given key.
pub fn zero_bucket_line(name: &str, buckets: &cira_analysis::BucketStats, key: u64) -> String {
    let cell = buckets.cell(key).copied().unwrap_or_default();
    format!(
        "{name}: zero bucket holds {:.1}% of references and {:.1}% of mispredictions",
        100.0 * cell.refs / buckets.total_refs().max(f64::MIN_POSITIVE),
        100.0 * cell.mispredicts / buckets.total_mispredicts().max(f64::MIN_POSITIVE),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bucket_line_formats_shares() {
        let mut stats = cira_analysis::BucketStats::new();
        for i in 0..8 {
            stats.observe(0, i == 0); // key 0: 8 refs, 1 miss
        }
        stats.observe(1, true); // key 1: 1 ref, 1 miss
        let line = zero_bucket_line("m", &stats, 0);
        assert!(line.contains("88.9%"), "{line}"); // 8/9 refs
        assert!(line.contains("50.0%"), "{line}"); // 1/2 misses
    }

    #[test]
    fn zero_bucket_line_handles_missing_key() {
        let stats = cira_analysis::BucketStats::new();
        let line = zero_bucket_line("m", &stats, 0);
        assert!(line.contains("0.0%"), "{line}");
    }

    #[test]
    fn results_dir_defaults() {
        // Note: does not mutate the environment (tests run in parallel).
        let d = results_dir();
        assert!(!d.as_os_str().is_empty());
    }
}
