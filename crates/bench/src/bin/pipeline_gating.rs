//! Pipeline gating sweep — the energy/performance trade-off that the
//! paper's confidence estimators enable (Manne, Klauser & Grunwald, ISCA
//! 1998). For each gating threshold, reports suite-average IPC relative to
//! the ungated baseline and the wrong-path "extra work" fraction.

use cira_analysis::engine::Engine;
use cira_apps::pipeline::{simulate_pipeline, GatePolicy, PipelineConfig, PipelineReport};
use cira_bench::{banner, trace_len};
use cira_core::one_level::ResettingConfidence;
use cira_core::{IndexSpec, LowRule, ThresholdEstimator};
use cira_predictor::Gshare;
use cira_trace::suite::{ibs_like_suite, Benchmark};

fn run_policy(
    suite: &[Benchmark],
    len: u64,
    policy: GatePolicy,
    conf_threshold: u64,
) -> Vec<PipelineReport> {
    // Shared engine: traces are materialized once and reused across all
    // policy/threshold sweep points; the pool bounds parallelism instead
    // of spawning one thread per benchmark per point.
    Engine::global().map_suite(suite, len, |_, trace| {
        let mut predictor = Gshare::paper_large();
        let mut est = ThresholdEstimator::new(
            ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(16)),
            LowRule::KeyBelow(conf_threshold),
        );
        simulate_pipeline(
            trace.iter().take(len as usize),
            &mut predictor,
            &mut est,
            policy,
            PipelineConfig::default(),
        )
    })
}

fn averages(reports: &[PipelineReport]) -> (f64, f64) {
    let n = reports.len() as f64;
    (
        reports.iter().map(|r| r.ipc()).sum::<f64>() / n,
        reports.iter().map(|r| r.extra_work()).sum::<f64>() / n,
    )
}

fn main() {
    let len = trace_len().min(300_000); // the cycle model is ~6x slower per branch
    banner(
        "Pipeline gating",
        "Stall fetch behind N unresolved low-confidence branches (resetting counters < 8)",
        len,
    );
    let suite = ibs_like_suite();

    let baseline = run_policy(&suite, len, GatePolicy::NeverGate, 8);
    let (base_ipc, base_waste) = averages(&baseline);

    println!(
        "{:<26} {:>8} {:>10} {:>12} {:>12}",
        "policy", "IPC", "rel. IPC", "extra work", "waste cut"
    );
    println!(
        "{:<26} {:>8.3} {:>9.1}% {:>11.1}% {:>12}",
        "never gate (baseline)",
        base_ipc,
        100.0,
        100.0 * base_waste,
        "—"
    );
    // Sweep both knobs: how selective the low-confidence signal is
    // (counter < conf) and how many unresolved low-confidence branches
    // trigger the gate.
    for (conf, limit) in [(2u64, 1u32), (2, 2), (4, 1), (4, 2), (8, 1), (8, 2), (8, 3)] {
        let reports = run_policy(
            &suite,
            len,
            GatePolicy::GateOnLowConfidence {
                low_confidence_limit: limit,
            },
            conf,
        );
        let (ipc, waste) = averages(&reports);
        println!(
            "{:<26} {:>8.3} {:>9.1}% {:>11.1}% {:>11.1}%",
            format!("conf<{conf}, gate at {limit}"),
            ipc,
            100.0 * ipc / base_ipc,
            100.0 * waste,
            100.0 * (1.0 - waste / base_waste)
        );
    }
    let never = run_policy(&suite, len, GatePolicy::GateAlways, 8);
    let (ipc, waste) = averages(&never);
    println!(
        "{:<26} {:>8.3} {:>9.1}% {:>11.1}% {:>11.1}%",
        "no speculation",
        ipc,
        100.0 * ipc / base_ipc,
        100.0 * waste,
        100.0
    );
    println!();
    println!(
        "expected shape (Manne et al. 1998): small gate thresholds cut most of the\n\
         wrong-path work at a few percent of IPC; no speculation kills IPC"
    );
}
