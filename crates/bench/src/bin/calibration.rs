//! Calibration: per-benchmark gshare misprediction rates.
//!
//! Reproduces the paper's predictor operating points:
//!
//! * §1.2 / §4: gshare with 2^16 two-bit counters and 16-bit history —
//!   overall misprediction rate **3.85%** on IBS (equal weighting).
//! * §5.3: gshare with 4K counters and 12-bit history — **8.6%**.
//!
//! Also verifies the Fig. 9 ordering: `jpeg` best, `gcc` worst.

use cira_analysis::Engine;
use cira_bench::{banner, trace_len};
use cira_predictor::Gshare;
use cira_trace::suite::ibs_like_suite;

fn main() {
    let len = trace_len();
    banner(
        "calibration",
        "Per-benchmark gshare misprediction rates (paper: 3.85% large / 8.6% small)",
        len,
    );
    let suite = ibs_like_suite();

    let large = Engine::global().run_suite_predictor(&suite, len, Gshare::paper_large);
    let small = Engine::global().run_suite_predictor(&suite, len, Gshare::paper_small);

    println!(
        "{:<12} {:>14} {:>14}",
        "benchmark", "gshare 64K (%)", "gshare 4K (%)"
    );
    let mut sum_large = 0.0;
    let mut sum_small = 0.0;
    for ((name, l), (_, s)) in large.iter().zip(&small) {
        println!(
            "{:<12} {:>14.2} {:>14.2}",
            name,
            100.0 * l.miss_rate(),
            100.0 * s.miss_rate()
        );
        sum_large += l.miss_rate();
        sum_small += s.miss_rate();
    }
    let avg_large = 100.0 * sum_large / large.len() as f64;
    let avg_small = 100.0 * sum_small / small.len() as f64;
    println!("{:-<42}", "");
    println!("{:<12} {:>14.2} {:>14.2}", "average", avg_large, avg_small);
    println!();
    println!("paper        {:>14} {:>14}", "3.85", "8.60");
}
