//! Operating-point sweep for the recommended practical design: every
//! `counter < t` threshold of the resetting-counter estimator (the §5.2
//! "threshold granularity" discussion, extended into a full ROC-style
//! table with the Grunwald-style PVN/PVP/SPEC metrics).

use cira_analysis::Engine;
use cira_analysis::{sweep_to_csv, threshold_sweep};
use cira_bench::{banner, results_dir, trace_len};
use cira_core::one_level::ResettingConfidence;
use cira_core::IndexSpec;
use cira_predictor::Gshare;
use cira_trace::suite::ibs_like_suite;

fn main() {
    let len = trace_len();
    banner(
        "Threshold sweep (ROC)",
        "All operating points of the resetting-counter estimator (PC xor BHR, 2^16 entries)",
        len,
    );
    let suite = ibs_like_suite();
    let out = Engine::global().run_suite_mechanism(&suite, len, Gshare::paper_large, || {
        ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(16))
    });
    let sweep = threshold_sweep(&out.combined, 16);

    println!(
        "{:>9} {:>9} {:>9} {:>7} {:>7} {:>7}",
        "threshold", "low set", "coverage", "PVN", "PVP", "SPEC"
    );
    for p in &sweep {
        println!(
            "{:>9} {:>8.1}% {:>8.1}% {:>7.3} {:>7.4} {:>7.3}",
            p.threshold,
            100.0 * p.low_fraction,
            100.0 * p.coverage,
            p.pvn,
            p.pvp,
            p.specificity
        );
    }

    let path = results_dir().join("roc_resetting.csv");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    match std::fs::write(&path, sweep_to_csv(&sweep)) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => cira_obs::warn!("could not write roc csv", path = path.display(), error = e),
    }
    println!();
    println!(
        "use: pick the threshold whose low-set size fits the application's \
         resource budget (the paper's dual-path study uses ~20%)"
    );
}
