//! Ablation: context-switch flushing of the confidence tables (§5.4).
//!
//! The paper studies initial CT values because "it takes a long time for
//! the tables to build up history", mentions flushing at context switches
//! as the motivating scenario, and *conjectures* that leaving the CIRs in
//! place except for setting the oldest bit ("lastbit") "would tend to
//! simplify the initialization hardware and provide good performance".
//! The paper did not run that experiment; this ablation does.
//!
//! Setup: the best one-level method (PC⊕BHR, 2^16 × 16-bit CIRs, ideal
//! reduction), flushed every `interval` branches with each initialization
//! policy, across the suite.

use cira_analysis::engine::Engine;
use cira_analysis::runner::collect_mechanism_buckets_with_flush;
use cira_analysis::{BucketStats, CoverageCurve};
use cira_bench::{banner, trace_len};
use cira_core::one_level::OneLevelCir;
use cira_core::{IndexSpec, InitPolicy};
use cira_predictor::Gshare;
use cira_trace::suite::{ibs_like_suite, Benchmark};

fn run_config(suite: &[Benchmark], len: u64, init: InitPolicy, interval: u64) -> f64 {
    // Shared engine: the 12 (policy, interval) sweep points replay one
    // cached materialization per benchmark instead of regenerating the
    // synthetic trace 12 times each, and the pool bounds thread count.
    let per: Vec<BucketStats> = Engine::global().map_suite(suite, len, |_, trace| {
        let mut predictor = Gshare::paper_large();
        let mut mech = OneLevelCir::new(IndexSpec::pc_xor_bhr(16), 16, init);
        collect_mechanism_buckets_with_flush(
            trace.iter().take(len as usize),
            &mut predictor,
            &mut mech,
            interval,
        )
    });
    let combined = BucketStats::combine_equal_weight(per.iter());
    CoverageCurve::from_buckets(&combined).coverage_at(20.0)
}

fn main() {
    let len = trace_len();
    banner(
        "Ablation: context-switch flushing",
        "Flush the CT every N branches with each init policy; coverage at the 20% budget",
        len,
    );
    let suite = ibs_like_suite();
    let intervals = [10_000u64, 50_000, 250_000, u64::MAX];
    let policies = [
        ("ones", InitPolicy::AllOnes),
        ("zeros", InitPolicy::AllZeros),
        ("lastbit", InitPolicy::LastBit),
    ];

    print!("{:<10}", "init");
    for &i in &intervals {
        if i == u64::MAX {
            print!(" {:>12}", "no flush");
        } else {
            print!(" {:>12}", i);
        }
    }
    println!();
    for (name, policy) in policies {
        print!("{name:<10}");
        for &interval in &intervals {
            let cov = run_config(&suite, len, policy, interval);
            print!(" {cov:>11.1}%");
        }
        println!();
    }
    println!();
    println!(
        "paper conjecture (§5.4): lastbit-on-flush should perform like full all-ones\n\
         reinitialization while needing far simpler hardware"
    );
}
