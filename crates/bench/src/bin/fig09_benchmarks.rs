//! Figure 9: per-benchmark variation — the best (jpeg) and worst (gcc)
//! IBS benchmarks under the best one-level method with ideal reduction.
//!
//! Paper observations to reproduce: considerable spread between benchmarks;
//! the zero buckets hold similar *fractions of mispredictions* but very
//! different numbers of branches.

use cira_analysis::Engine;
use cira_bench::{banner, report_curves, trace_len, zero_bucket_line};
use cira_core::one_level::OneLevelCir;
use cira_core::IndexSpec;
use cira_predictor::Gshare;
use cira_trace::suite::ibs_like_suite;

fn main() {
    let len = trace_len();
    banner(
        "Figure 9",
        "Best (jpeg) vs worst (gcc) benchmark, one-level PC xor BHR with ideal reduction",
        len,
    );
    let suite = ibs_like_suite();
    let out = Engine::global().run_suite_mechanism(&suite, len, Gshare::paper_large, || {
        OneLevelCir::paper_default(IndexSpec::pc_xor_bhr(16))
    });

    println!("per-benchmark coverage at a 20% branch budget:");
    for (name, stats) in &out.per_benchmark {
        let curve = cira_analysis::CoverageCurve::from_buckets(stats);
        println!(
            "  {:<12} miss {:5.2}%  coverage@20% {:5.1}%",
            name,
            100.0 * stats.miss_rate(),
            curve.coverage_at(20.0)
        );
    }
    println!();
    for target in ["jpeg", "gcc"] {
        let stats = &out
            .per_benchmark
            .iter()
            .find(|(n, _)| n == target)
            .expect("suite contains benchmark")
            .1;
        println!("{}", zero_bucket_line(target, stats, 0));
    }

    let jpeg = out.benchmark_curve("jpeg").expect("jpeg curve");
    let gcc = out.benchmark_curve("gcc").expect("gcc curve");
    println!();
    report_curves(
        "fig09_benchmarks",
        &[("gcc".to_string(), gcc), ("jpeg".to_string(), jpeg)],
    );
}
