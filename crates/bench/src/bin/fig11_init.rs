//! Figure 11: the effect of CT initialization (§5.4) — the best one-level
//! method (PC⊕BHR, 2^16 × 16-bit CIRs) with ideal reduction, initialized
//! all-ones, all-zeros, lastbit, and random.
//!
//! Paper observations to reproduce: ones ≈ random ≈ lastbit, all clearly
//! better than all-zeros (which assigns high confidence to cold entries,
//! exactly when mispredictions are most likely).

use cira_bench::{banner, run_figure, trace_len};
use cira_core::one_level::OneLevelCir;
use cira_core::{ConfidenceMechanism, IndexSpec, InitPolicy};
use cira_predictor::Gshare;
use cira_trace::suite::ibs_like_suite;

fn main() {
    let len = trace_len();
    banner(
        "Figure 11",
        "CT initialization policies: ones vs zeros vs lastbit vs random",
        len,
    );
    let suite = ibs_like_suite();

    run_figure(
        "fig11_init",
        &suite,
        len,
        Gshare::paper_large,
        &["one", "zero", "lastbit", "random"],
        || {
            let idx = IndexSpec::pc_xor_bhr(16);
            vec![
                Box::new(OneLevelCir::new(idx.clone(), 16, InitPolicy::AllOnes))
                    as Box<dyn ConfidenceMechanism>,
                Box::new(OneLevelCir::new(idx.clone(), 16, InitPolicy::AllZeros)),
                Box::new(OneLevelCir::new(idx.clone(), 16, InitPolicy::LastBit)),
                Box::new(OneLevelCir::new(idx, 16, InitPolicy::Random(0xC1AA))),
            ]
        },
        &[],
    );
    println!();
    println!("paper: one / random / lastbit perform similarly; zero is clearly worse");
}
