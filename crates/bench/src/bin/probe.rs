//! Diagnostic probe: splits each benchmark's misprediction rate into user
//! and kernel components at both predictor sizes. Not part of the paper's
//! experiment set; used while calibrating the workload profiles.

use cira_predictor::{BranchPredictor, Gshare, HistoryRegister};
use cira_trace::suite::ibs_like_suite;

struct Split {
    user_n: u64,
    user_miss: u64,
    kern_n: u64,
    kern_miss: u64,
}

fn run_split<P: BranchPredictor>(
    trace: impl Iterator<Item = cira_trace::BranchRecord>,
    p: &mut P,
    kernel_start: u64,
) -> Split {
    let mut bhr = HistoryRegister::new(64);
    let mut s = Split {
        user_n: 0,
        user_miss: 0,
        kern_n: 0,
        kern_miss: 0,
    };
    for r in trace {
        let h = bhr.value();
        let miss = p.predict(r.pc, h) != r.taken;
        if r.pc >= kernel_start {
            s.kern_n += 1;
            s.kern_miss += miss as u64;
        } else {
            s.user_n += 1;
            s.user_miss += miss as u64;
        }
        p.update(r.pc, h, r.taken);
        bhr.push(r.taken);
    }
    s
}

fn pct(a: u64, b: u64) -> f64 {
    100.0 * a as f64 / b.max(1) as f64
}

fn main() {
    let len: usize = 1_000_000;
    println!(
        "{:<12} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "bench", "kshare%", "u16", "k16", "u12", "k12", "tot16"
    );
    for bench in ibs_like_suite().iter() {
        let ks = bench.kernel_start_pc();
        let g16 = run_split(bench.walker().take(len), &mut Gshare::new(16, 16), ks);
        let g12 = run_split(bench.walker().take(len), &mut Gshare::new(12, 12), ks);
        println!(
            "{:<12} {:>7.1} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2}",
            bench.name(),
            pct(g16.kern_n, g16.kern_n + g16.user_n),
            pct(g16.user_miss, g16.user_n),
            pct(g16.kern_miss, g16.kern_n),
            pct(g12.user_miss, g12.user_n),
            pct(g12.kern_miss, g12.kern_n),
            pct(g16.user_miss + g16.kern_miss, len as u64),
        );
    }
}
