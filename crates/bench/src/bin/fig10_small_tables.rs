//! Figure 10: small confidence tables under the small predictor (§5.3).
//!
//! Setup: the 4K-entry gshare predictor (12-bit history, ≈8.6% mispredicts
//! in the paper) with resetting-counter confidence tables from 4096 down to
//! 128 entries, accessed with PC⊕BHR.
//!
//! Paper observations to reproduce:
//! * at equal size (4K), ≈75% of mispredictions are identified within 20%
//!   of branches — relatively worse than the large configuration because
//!   aliasing keeps resetting counters out of the saturated state;
//! * performance degrades gracefully as the table shrinks to 128 entries.

use cira_bench::{banner, run_figure, trace_len};
use cira_core::one_level::ResettingConfidence;
use cira_core::{ConfidenceMechanism, IndexSpec, InitPolicy};
use cira_predictor::Gshare;
use cira_trace::suite::ibs_like_suite;

fn main() {
    let len = trace_len();
    banner(
        "Figure 10",
        "Small CIR tables (resetting counters, PC xor BHR) under the 4K gshare predictor",
        len,
    );
    let suite = ibs_like_suite();

    let sizes: Vec<u32> = vec![12, 11, 10, 9, 8, 7]; // 4096 .. 128 entries
    let names: Vec<String> = sizes.iter().map(|b| format!("{}", 1u32 << b)).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();

    run_figure(
        "fig10_small_tables",
        &suite,
        len,
        Gshare::paper_small,
        &name_refs,
        || {
            sizes
                .iter()
                .map(|&bits| {
                    Box::new(ResettingConfidence::new(
                        IndexSpec::pc_xor_bhr(bits),
                        16,
                        InitPolicy::AllOnes,
                    )) as Box<dyn ConfidenceMechanism>
                })
                .collect()
        },
        &[],
    );
    println!();
    println!("paper: ~75% at 20% for the 4096-entry table; graceful degradation to 128");
}
