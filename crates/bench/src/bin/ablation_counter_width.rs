//! Ablation: resetting-counter saturation value (§5.2 threshold
//! granularity).
//!
//! The paper notes one "could use larger counters to get somewhat better
//! granularity, but this approach is limited": the saturated bucket can be
//! subdivided only as far as the useful correctness-history horizon. This
//! ablation sweeps the counter maximum (4, 8, 16, 32, 64).

use cira_bench::{banner, run_figure, trace_len};
use cira_core::one_level::ResettingConfidence;
use cira_core::{ConfidenceMechanism, IndexSpec, InitPolicy};
use cira_predictor::Gshare;
use cira_trace::suite::ibs_like_suite;

fn main() {
    let len = trace_len();
    banner(
        "Ablation: resetting counter width",
        "Resetting counters saturating at 4 / 8 / 16 / 32 / 64 (PC xor BHR, 2^16 entries)",
        len,
    );
    let suite = ibs_like_suite();
    let maxes = [4u32, 8, 16, 32, 64];
    let names: Vec<String> = maxes.iter().map(|m| format!("max={m}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();

    let results = run_figure(
        "ablation_counter_width",
        &suite,
        len,
        Gshare::paper_large,
        &name_refs,
        || {
            maxes
                .iter()
                .map(|&m| {
                    Box::new(ResettingConfidence::new(
                        IndexSpec::pc_xor_bhr(16),
                        m,
                        InitPolicy::AllOnes,
                    )) as Box<dyn ConfidenceMechanism>
                })
                .collect()
        },
        &[],
    );
    println!();
    for (name, r) in name_refs.iter().zip(&results) {
        let c = r.curve();
        println!(
            "{name}: finest granularity point {:.2}% of branches, coverage there {:.1}%",
            c.points().first().map(|p| p.pct_branches).unwrap_or(0.0),
            c.points().first().map(|p| p.pct_mispredicts).unwrap_or(0.0),
        );
    }
    println!();
    println!("paper: wider counters refine the saturated bucket with diminishing returns");
}
