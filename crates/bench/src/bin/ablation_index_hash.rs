//! Ablation: XOR vs concatenation of the PC/BHR index sub-fields.
//!
//! §3.1 reports (without a figure) that "exclusive-ORing is more effective
//! than concatenating sub-fields" for CIR-table indexing, mirroring
//! gshare-vs-gselect for prediction. This ablation regenerates that claim.

use cira_bench::{banner, run_figure, trace_len};
use cira_core::one_level::OneLevelCir;
use cira_core::{ConfidenceMechanism, IndexSpec};
use cira_predictor::Gshare;
use cira_trace::suite::ibs_like_suite;

fn main() {
    let len = trace_len();
    banner(
        "Ablation: index composition",
        "One-level CIR table indexed by PC xor BHR vs PC || BHR (concatenated sub-fields)",
        len,
    );
    let suite = ibs_like_suite();

    let results = run_figure(
        "ablation_index_hash",
        &suite,
        len,
        Gshare::paper_large,
        &["BHRxorPC", "PC||BHR"],
        || {
            vec![
                Box::new(OneLevelCir::paper_default(IndexSpec::pc_xor_bhr(16)))
                    as Box<dyn ConfidenceMechanism>,
                Box::new(OneLevelCir::paper_default(IndexSpec::pc_concat_bhr(16))),
            ]
        },
        &[],
    );
    let xor = results[0].curve().coverage_at(20.0);
    let cat = results[1].curve().coverage_at(20.0);
    println!();
    println!("at 20%: xor {xor:.1}% vs concat {cat:.1}% (paper: xor more effective)");
}
