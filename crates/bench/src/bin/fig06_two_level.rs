//! Figure 6: two-level dynamic confidence methods with the ideal reduction
//! (§4.2).
//!
//! Paper observations to reproduce:
//! * best variant: PC⊕BHR indexing level 1, the level-1 CIR indexing
//!   level 2;
//! * PC⊕BHR → CIR⊕PC⊕BHR generally second;
//! * PC → CIR slightly better only in the 5–10% region, otherwise worst;
//! * all roughly comparable to the best one-level method (Fig. 7).

use cira_analysis::Engine;
use cira_bench::{banner, run_figure, trace_len};
use cira_core::two_level::TwoLevelCir;
use cira_core::ConfidenceMechanism;
use cira_predictor::Gshare;
use cira_trace::suite::ibs_like_suite;

fn main() {
    let len = trace_len();
    banner(
        "Figure 6",
        "Two-level dynamic confidence (ideal reduction): the three paper variants",
        len,
    );
    let suite = ibs_like_suite();
    let static_curve = Engine::global().run_suite_static(&suite, len, Gshare::paper_large).curve();

    run_figure(
        "fig06_two_level",
        &suite,
        len,
        Gshare::paper_large,
        &["PC-CIR", "BHRxorPC-CIR", "BHRxorPC-BHRxorCIRxorPC"],
        || {
            vec![
                Box::new(TwoLevelCir::variant_pc_cir()) as Box<dyn ConfidenceMechanism>,
                Box::new(TwoLevelCir::variant_pcxorbhr_cir()),
                Box::new(TwoLevelCir::variant_pcxorbhr_cirxorpcxorbhr()),
            ]
        },
        &[("static", static_curve)],
    );
    println!();
    println!("paper: best is BHRxorPC-CIR; two-level is no better than one-level (Fig. 7)");
}
