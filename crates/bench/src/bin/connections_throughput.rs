//! Connection-scale throughput of the sharded `cira-serve` event loop.
//!
//! A real server (N epoll shards, the shared worker pool) on a loopback
//! socket; a fleet of client threads opens sessions back-to-back, each
//! session streaming its share of `CIRA_TRACE_LEN` branches in batches
//! and closing with a GOODBYE. Reported: sessions/s, records/s, and the
//! p50/p99 whole-session service time (connect through GOODBYE_ACK) —
//! the end-to-end figure the thread-per-core rearchitecture is judged
//! on. Results go to `BENCH_serve.json` with toolchain/host provenance.
//!
//! Environment:
//!
//! * `CIRA_TRACE_LEN` — total branches across all sessions (default 1M);
//! * `CIRA_SERVE_SHARDS` — event-loop shards (default: one per core).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use cira_analysis::engine::pool::WorkerPool;
use cira_bench::{banner, rustc_version, trace_len};
use cira_serve::server::{serve, ServerConfig};
use cira_serve::{Client, HelloConfig};
use cira_trace::codec::PackedTrace;
use cira_trace::suite::ibs_like_suite;

/// Sessions opened, streamed, and closed per run.
const SESSIONS: usize = 512;
/// Records per BATCH frame.
const BATCH: usize = 500;
/// Client threads driving sessions back-to-back.
const CLIENT_THREADS: usize = 4;

fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn kernel() -> String {
    std::fs::read_to_string("/proc/sys/kernel/osrelease")
        .map(|s| s.trim().to_owned())
        .unwrap_or_else(|_| "unknown".to_owned())
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    let idx = ((sorted_us.len() as f64 * p).ceil() as usize).max(1) - 1;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

fn main() {
    let len = trace_len();
    let shards = match std::env::var("CIRA_SERVE_SHARDS") {
        Ok(v) => v
            .parse::<usize>()
            .unwrap_or_else(|_| panic!("CIRA_SERVE_SHARDS must be an integer, got {v:?}")),
        Err(_) => 0, // serve() resolves 0 to one shard per core
    };
    let per_session = (len as usize / SESSIONS).max(BATCH);
    banner(
        "Serve connection throughput",
        "Session open/stream/close rate against the sharded epoll server",
        len,
    );

    let cfg = ServerConfig {
        shards,
        max_sessions: 2 * SESSIONS,
        ..ServerConfig::default()
    };
    let handle = serve("127.0.0.1:0", cfg, WorkerPool::global()).expect("bind");
    let addr = handle.local_addr().to_string();
    let resolved_shards = if shards == 0 { host_cores() } else { shards };
    println!(
        "{SESSIONS} sessions x {per_session} records (batch {BATCH}), \
         {CLIENT_THREADS} client threads, {resolved_shards} shards"
    );
    println!();

    // Shared work queue: threads claim session indices until none remain.
    let next = Arc::new(AtomicUsize::new(0));
    let t0 = Instant::now();
    let threads: Vec<_> = (0..CLIENT_THREADS)
        .map(|_| {
            let addr = addr.clone();
            let next = Arc::clone(&next);
            std::thread::spawn(move || {
                let mut service_us = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= SESSIONS {
                        return service_us;
                    }
                    let trace: PackedTrace = ibs_like_suite()[i % 6]
                        .walker()
                        .take(per_session)
                        .collect();
                    let s0 = Instant::now();
                    let mut client =
                        Client::connect(&addr, HelloConfig::default()).expect("connect");
                    let totals = client.stream(&trace, BATCH).expect("stream");
                    assert_eq!(totals.records, per_session as u64);
                    client.goodbye().expect("goodbye");
                    service_us.push(s0.elapsed().as_micros() as u64);
                }
            })
        })
        .collect();
    let mut service_us: Vec<u64> = threads
        .into_iter()
        .flat_map(|t| t.join().expect("client thread"))
        .collect();
    let wall = t0.elapsed().as_secs_f64();
    handle.shutdown_and_join();

    service_us.sort_unstable();
    let sessions_per_sec = SESSIONS as f64 / wall;
    let records_per_sec = (SESSIONS * per_session) as f64 / wall;
    let p50 = percentile(&service_us, 0.50);
    let p99 = percentile(&service_us, 0.99);
    println!(
        "wall: {wall:.3}s  ({sessions_per_sec:.1} sessions/s, {:.2} Mrecords/s)",
        records_per_sec / 1e6
    );
    println!("session service time: p50 {p50} us, p99 {p99} us");

    let json = format!(
        "{{\n  \"trace_len\": {len},\n  \"sessions\": {SESSIONS},\n  \"records_per_session\": {per_session},\n  \"batch_records\": {BATCH},\n  \"client_threads\": {CLIENT_THREADS},\n  \"shards\": {resolved_shards},\n  \"wall_seconds\": {wall:.4},\n  \"sessions_per_sec\": {sessions_per_sec:.1},\n  \"records_per_sec\": {records_per_sec:.0},\n  \"service_us\": {{\"p50\": {p50}, \"p99\": {p99}}},\n  \"provenance\": {{\"rustc\": \"{}\", \"kernel\": \"{}\", \"host_cores\": {}}}\n}}\n",
        rustc_version(),
        kernel(),
        host_cores(),
    );
    match std::fs::write("BENCH_serve.json", &json) {
        Ok(()) => println!("wrote BENCH_serve.json"),
        Err(e) => cira_obs::warn!("could not write BENCH_serve.json", error = e),
    }
}
