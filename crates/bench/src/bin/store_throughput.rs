//! Spill/load throughput of the durable session store.
//!
//! The server's park path pays `Checkpoint::encode` + `SessionStore::put`
//! (which fsyncs before acknowledging) per parked session; every cold
//! resume pays `get` + `Checkpoint::decode`. This binary measures both
//! legs with an authentic payload: one default-configuration session
//! (gshare64k + resetting:16) is replayed over `CIRA_TRACE_LEN` branches,
//! checkpointed, and that image is spilled and reloaded as a fleet of
//! distinct sessions through a fresh page file.
//!
//! Reported per leg: sessions/s and MB/s, plus the buffer pool's
//! hit/miss split for the load leg. Results go to `BENCH_store.json`.

use std::time::Instant;

use cira_analysis::engine::replay::StreamingReplay;
use cira_bench::{banner, trace_len};
use cira_core::one_level::ResettingConfidence;
use cira_core::{IndexSpec, InitPolicy};
use cira_predictor::Gshare;
use cira_store::store::SessionStore;
use cira_store::Checkpoint;
use cira_trace::codec::PackedTrace;
use cira_trace::suite::ibs_like_suite;

/// Distinct sessions spilled/reloaded per rep.
const SESSIONS: u64 = 32;
/// Timing repetitions per leg; the best wall time wins.
const REPS: usize = 3;

/// Replays the server's default session over `len` branches and returns
/// its full CIRD checkpoint.
fn warm_checkpoint(len: u64) -> Checkpoint {
    let mut replay = StreamingReplay::new(
        Box::new(Gshare::paper_large()),
        Box::new(ResettingConfidence::new(
            IndexSpec::pc_xor_bhr(16),
            16,
            InitPolicy::AllOnes,
        )),
    );
    let trace: PackedTrace = ibs_like_suite()[0].walker().take(len as usize).collect();
    replay.feed(&trace);
    let run = replay.run();
    Checkpoint {
        session_id: 1,
        predictor: "gshare64k".into(),
        mechanism: "resetting:16".into(),
        index: "pcxorbhr:16".into(),
        init: "ones".into(),
        threshold: 16,
        last_seq: Some(0),
        batches: 1,
        low_confidence: 0,
        bhr: replay.bhr_value(),
        branches: run.branches,
        mispredicts: run.mispredicts,
        predictor_state: replay.predictor_state(),
        mechanism_state: replay.mechanism_state(),
        cells: replay
            .stats()
            .iter()
            .map(|(k, c)| (k, c.refs as u64, c.mispredicts as u64))
            .collect(),
    }
}

fn main() {
    let len = trace_len();
    banner(
        "Store spill/load throughput",
        "Checkpoint encode+put (fsync) and get+decode through the page file",
        len,
    );

    let checkpoint = warm_checkpoint(len);
    let blob = checkpoint.encode();
    let dir = std::env::temp_dir().join(format!("cira-bench-store-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("bench.cirstore");
    println!(
        "payload: {} bytes per session ({} sessions, best of {REPS} reps)",
        blob.len(),
        SESSIONS
    );
    println!();

    // Spill: encode + put for each session, fsync included — the cost a
    // PARKED_ACK stands behind.
    let mut spill_best = f64::INFINITY;
    for _ in 0..REPS {
        let _ = std::fs::remove_file(&path);
        let mut store = SessionStore::open(&path, 0).expect("open store");
        let t0 = Instant::now();
        for token in 0..SESSIONS {
            let bytes = checkpoint.encode();
            store
                .put(token, token, 0, &bytes)
                .expect("put checkpoint");
        }
        spill_best = spill_best.min(t0.elapsed().as_secs_f64());
    }
    let spill_mb = SESSIONS as f64 * blob.len() as f64 / 1e6;
    println!(
        "spill: {spill_best:8.3}s  ({:.1} sessions/s, {:.1} MB/s)",
        SESSIONS as f64 / spill_best,
        spill_mb / spill_best
    );

    // Load: reopen (cold buffer pool) + get + decode for each session —
    // the cost of a RESUME that misses the hot tier.
    let mut load_best = f64::INFINITY;
    let (mut hits, mut misses) = (0u64, 0u64);
    for _ in 0..REPS {
        let mut store = SessionStore::open(&path, 0).expect("reopen store");
        let t0 = Instant::now();
        for token in 0..SESSIONS {
            let (_meta, bytes) = store.get(token).expect("get checkpoint");
            let decoded = Checkpoint::decode(&bytes).expect("decode checkpoint");
            assert_eq!(decoded.branches, checkpoint.branches, "payload integrity");
        }
        load_best = load_best.min(t0.elapsed().as_secs_f64());
        hits = store.page_hits();
        misses = store.page_misses();
    }
    println!(
        "load:  {load_best:8.3}s  ({:.1} sessions/s, {:.1} MB/s; {hits} page hits / {misses} misses)",
        SESSIONS as f64 / load_best,
        spill_mb / load_best
    );

    let json = format!(
        "{{\n  \"trace_len\": {len},\n  \"sessions\": {SESSIONS},\n  \"blob_bytes\": {},\n  \"reps\": {REPS},\n  \"spill\": {{\"wall_seconds\": {spill_best:.4}, \"sessions_per_sec\": {:.1}, \"mb_per_sec\": {:.1}}},\n  \"load\": {{\"wall_seconds\": {load_best:.4}, \"sessions_per_sec\": {:.1}, \"mb_per_sec\": {:.1}}},\n  \"load_page_hits\": {hits},\n  \"load_page_misses\": {misses}\n}}\n",
        blob.len(),
        SESSIONS as f64 / spill_best,
        spill_mb / spill_best,
        SESSIONS as f64 / load_best,
        spill_mb / load_best,
    );
    match std::fs::write("BENCH_store.json", &json) {
        Ok(()) => println!("wrote BENCH_store.json"),
        Err(e) => cira_obs::warn!("could not write BENCH_store.json", error = e),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
