//! Perf smoke test for the observability layer.
//!
//! The server's batch drain loop pays a fixed instrumentation toll per
//! batch: one `Instant` pair around the scoring call, four relaxed counter
//! adds, and two histogram records (`crates/serve/src/server.rs`,
//! `drain`). This binary measures that toll directly: it streams the same
//! trace through a [`StreamingReplay`] in server-sized batches twice —
//! once bare, once adding exactly the drain loop's per-batch metric
//! operations — and reports the throughput difference.
//!
//! A third path adds the drain loop's flight-recorder calls (rev 1.5)
//! with the recorder compiled in but left **disabled** — the
//! configuration every untraced production server runs. Its only cost
//! is one relaxed atomic load per span/instant, so it must clear the
//! same bar as plain instrumentation.
//!
//! All paths do identical scoring work (asserted bit-for-bit below).
//! Reps are interleaved round-robin — bare, instrumented, traced, repeat
//! — and each path keeps its best wall time, so a slow scheduling period
//! penalises every path equally instead of whichever ran during it.
//! Results go to `BENCH_obs.json`. The acceptance bar is an overhead of
//! at most 2% at the default 1M-branch trace length.

use std::hint::black_box;
use std::time::Instant;

use cira_analysis::engine::replay::StreamingReplay;
use cira_bench::{banner, trace_len};
use cira_core::one_level::ResettingConfidence;
use cira_core::{IndexSpec, InitPolicy};
use cira_obs::{Counter, Histogram};
use cira_predictor::Gshare;
use cira_trace::codec::PackedTrace;
use cira_trace::suite::ibs_like_suite;

/// The server's default batch pipeline width (`cira replay --batch`).
const BATCH_LEN: usize = 4096;
/// The server's default low-confidence threshold (`HelloConfig`).
const THRESHOLD: u64 = 16;
/// Timing repetitions per path; the minimum wall time wins. The whole
/// bench stays under a couple of seconds at the default trace length,
/// so generous repetition is cheap insurance against scheduler noise.
const REPS: usize = 15;

/// The instruments the drain loop touches per batch — same shapes as
/// `ServerMetrics`, allocated fresh so a prior rep cannot warm them.
#[derive(Default)]
struct DrainMetrics {
    batches: Counter,
    records: Counter,
    mispredicts: Counter,
    low_confidence: Counter,
    batch_records: Histogram,
    batch_service_us: Histogram,
}

/// A fresh replayer with the server's default session configuration.
fn replayer() -> StreamingReplay {
    StreamingReplay::new(
        Box::new(Gshare::paper_large()),
        Box::new(ResettingConfidence::new(
            IndexSpec::pc_xor_bhr(16),
            16,
            InitPolicy::AllOnes,
        )),
    )
}

/// Feeds every batch bare: scoring plus the low-confidence scan the
/// session does anyway, no instrumentation. Returns (mispredicts, low).
fn run_bare(batches: &[PackedTrace]) -> (u64, u64) {
    let mut replay = replayer();
    let (mut mispredicts, mut low_total) = (0u64, 0u64);
    for batch in batches {
        let fed = replay.feed(batch);
        let low = fed.keys.iter().filter(|&&k| k < THRESHOLD).count() as u64;
        mispredicts += fed.mispredicts;
        low_total += black_box(low);
    }
    (mispredicts, low_total)
}

/// The same loop with the drain loop's per-batch metric operations added:
/// an `Instant` pair, four counter adds, two histogram records.
fn run_instrumented(batches: &[PackedTrace], m: &DrainMetrics) -> (u64, u64) {
    let mut replay = replayer();
    let (mut mispredicts, mut low_total) = (0u64, 0u64);
    for batch in batches {
        let n = batch.len() as u64;
        let t0 = Instant::now();
        let fed = replay.feed(batch);
        let service_us = t0.elapsed().as_micros() as u64;
        let low = fed.keys.iter().filter(|&&k| k < THRESHOLD).count() as u64;
        m.batches.inc();
        m.records.add(n);
        m.mispredicts.add(fed.mispredicts);
        m.low_confidence.add(low);
        m.batch_records.record(n);
        m.batch_service_us.record(service_us);
        mispredicts += fed.mispredicts;
        low_total += black_box(low);
    }
    (mispredicts, low_total)
}

/// The instrumented loop plus the flight-recorder operations the server's
/// batch path performs per batch — a `Score` span pair around the scoring
/// call and a `Checkout`/`Complete` instant on either side — with the
/// recorder left disabled. `Span::begin`/`instant` bail on one relaxed
/// load of the enable gate, so this is the cost a server with tracing
/// compiled in but switched off pays.
fn run_traced_disabled(batches: &[PackedTrace], m: &DrainMetrics) -> (u64, u64) {
    use cira_obs::trace::{self, Stage};
    assert!(!trace::enabled(), "this path measures the disabled gate");
    let mut replay = replayer();
    let (mut mispredicts, mut low_total) = (0u64, 0u64);
    for (i, batch) in batches.iter().enumerate() {
        let n = batch.len() as u64;
        trace::instant(Stage::Checkout, i as u64, 0, 0, n);
        let t0 = Instant::now();
        let span = trace::Span::begin(Stage::Score, i as u64, 0, 0);
        let fed = replay.feed(batch);
        span.end_with(n);
        let service_us = t0.elapsed().as_micros() as u64;
        let low = fed.keys.iter().filter(|&&k| k < THRESHOLD).count() as u64;
        trace::instant(Stage::Complete, i as u64, 0, 0, low);
        m.batches.inc();
        m.records.add(n);
        m.mispredicts.add(fed.mispredicts);
        m.low_confidence.add(low);
        m.batch_records.record(n);
        m.batch_service_us.record(service_us);
        mispredicts += fed.mispredicts;
        low_total += black_box(low);
    }
    (mispredicts, low_total)
}

/// Times one invocation of `f`, folding it into the running best.
fn timed<T>(best: &mut f64, f: impl FnOnce() -> T) -> T {
    let t0 = Instant::now();
    let value = f();
    *best = best.min(t0.elapsed().as_secs_f64());
    value
}

fn main() {
    let len = trace_len();
    banner(
        "Observability overhead",
        "Bare batch replay vs replay + the server drain loop's metric operations",
        len,
    );

    let trace: PackedTrace = ibs_like_suite()[0].walker().take(len as usize).collect();
    let batches: Vec<PackedTrace> = (0..trace.len())
        .step_by(BATCH_LEN)
        .map(|at| {
            (at..(at + BATCH_LEN).min(trace.len()))
                .map(|i| trace.get(i).expect("index in range"))
                .collect()
        })
        .collect();
    println!(
        "{} branches in {} batches of <= {BATCH_LEN}; best of {REPS} runs per path",
        trace.len(),
        batches.len()
    );
    println!();

    let metrics = DrainMetrics::default();
    let traced_metrics = DrainMetrics::default();
    let (mut bare_secs, mut instr_secs, mut traced_secs) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    let (mut bare_result, mut instr_result, mut traced_result) = ((0, 0), (0, 0), (0, 0));
    for _ in 0..REPS {
        bare_result = timed(&mut bare_secs, || run_bare(&batches));
        instr_result = timed(&mut instr_secs, || run_instrumented(&batches, &metrics));
        traced_result = timed(&mut traced_secs, || run_traced_disabled(&batches, &traced_metrics));
    }
    println!(
        "bare:         {bare_secs:8.3}s  ({:.1}M branches/s)",
        1e-6 * len as f64 / bare_secs
    );
    println!(
        "instrumented: {instr_secs:8.3}s  ({:.1}M branches/s)",
        1e-6 * len as f64 / instr_secs
    );
    println!(
        "traced (off): {traced_secs:8.3}s  ({:.1}M branches/s)",
        1e-6 * len as f64 / traced_secs
    );

    // The comparison only counts if all paths did identical work, and the
    // disabled recorder must not have captured a single event.
    assert_eq!(bare_result, instr_result, "paths must score identically");
    assert_eq!(bare_result, traced_result, "paths must score identically");
    assert_eq!(metrics.records.get(), len * REPS as u64);
    assert_eq!(metrics.batch_service_us.snapshot().count, metrics.batches.get());
    assert_eq!(cira_obs::trace::stats().recorded, 0, "recorder stayed off");

    let overhead_pct = 100.0 * (instr_secs - bare_secs) / bare_secs;
    let trace_disabled_overhead_pct = 100.0 * (traced_secs - bare_secs) / bare_secs;
    println!();
    println!("overhead: {overhead_pct:+.2}%  (acceptance bar: <= 2%)");
    println!("overhead with disabled tracing: {trace_disabled_overhead_pct:+.2}%  (same bar)");

    let json = format!(
        "{{\n  \"trace_len\": {},\n  \"batch_len\": {BATCH_LEN},\n  \"batches\": {},\n  \"reps\": {REPS},\n  \"bare\": {{\"wall_seconds\": {:.4}, \"branches_per_sec\": {:.0}}},\n  \"instrumented\": {{\"wall_seconds\": {:.4}, \"branches_per_sec\": {:.0}}},\n  \"traced_disabled\": {{\"wall_seconds\": {:.4}, \"branches_per_sec\": {:.0}}},\n  \"overhead_pct\": {:.3},\n  \"trace_disabled_overhead_pct\": {:.3},\n  \"identical_results\": true\n}}\n",
        len,
        batches.len(),
        bare_secs,
        len as f64 / bare_secs,
        instr_secs,
        len as f64 / instr_secs,
        traced_secs,
        len as f64 / traced_secs,
        overhead_pct,
        trace_disabled_overhead_pct,
    );
    match std::fs::write("BENCH_obs.json", &json) {
        Ok(()) => println!("wrote BENCH_obs.json"),
        Err(e) => cira_obs::warn!("could not write BENCH_obs.json", error = e),
    }
}
