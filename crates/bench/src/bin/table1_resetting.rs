//! Table 1: statistics for resetting counter values (§5.2) — the best
//! one-level method (PC⊕BHR, 2^16 entries) with 0..=16 resetting counters.
//!
//! Paper numbers to reproduce:
//! * count 0 isolates 41.7% of mispredictions in 4.28% of references;
//! * counts 0–1: 57.9% in 6.85%;
//! * counts 0–15 (everything but the saturated bucket): 89.3% in 20.3%.

use cira_analysis::Engine;
use cira_analysis::CounterTable;
use cira_bench::{banner, results_dir, trace_len};
use cira_core::one_level::ResettingConfidence;
use cira_core::IndexSpec;
use cira_predictor::Gshare;
use cira_trace::suite::ibs_like_suite;

fn main() {
    let len = trace_len();
    banner(
        "Table 1",
        "Resetting counter value statistics (PC xor BHR, 2^16 entries, counters 0..=16)",
        len,
    );
    let suite = ibs_like_suite();
    let out = Engine::global().run_suite_mechanism(&suite, len, Gshare::paper_large, || {
        ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(16))
    });
    let table = CounterTable::from_buckets(&out.combined, 16);
    println!("{table}");

    let r0 = table.row(0).expect("count 0 row");
    let r1 = table.row(1).expect("count 1 row");
    let r15 = table.row(15).expect("count 15 row");
    println!(
        "count 0      : {:5.1}% of mispredictions in {:5.2}% of refs (paper 41.7 in 4.28)",
        r0.cum_pct_mispredicts, r0.cum_pct_refs
    );
    println!(
        "counts 0..=1 : {:5.1}% of mispredictions in {:5.2}% of refs (paper 57.9 in 6.85)",
        r1.cum_pct_mispredicts, r1.cum_pct_refs
    );
    println!(
        "counts 0..=15: {:5.1}% of mispredictions in {:5.2}% of refs (paper 89.3 in 20.3)",
        r15.cum_pct_mispredicts, r15.cum_pct_refs
    );

    let path = results_dir().join("table1_resetting.csv");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    match std::fs::write(&path, table.to_csv()) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => cira_obs::warn!("could not write table csv", path = path.display(), error = e),
    }
}
