//! Ablation: indexing with the global CIR.
//!
//! §3.1 reports that "indexing with a global CIR is of little value — it
//! gives low performance when used alone and typically reduces performance
//! when added to the others". This ablation regenerates that claim.

use cira_bench::{banner, run_figure, trace_len};
use cira_core::index::{Combine, IndexSource};
use cira_core::one_level::OneLevelCir;
use cira_core::{ConfidenceMechanism, IndexSpec};
use cira_predictor::Gshare;
use cira_trace::suite::ibs_like_suite;

fn main() {
    let len = trace_len();
    banner(
        "Ablation: global CIR indexing",
        "Global CIR alone, and PC xor BHR with/without the global CIR mixed in",
        len,
    );
    let suite = ibs_like_suite();

    let results = run_figure(
        "ablation_global_cir",
        &suite,
        len,
        Gshare::paper_large,
        &["GCIR alone", "BHRxorPC", "BHRxorPCxorGCIR"],
        || {
            vec![
                Box::new(OneLevelCir::paper_default(IndexSpec::global_cir(16)))
                    as Box<dyn ConfidenceMechanism>,
                Box::new(OneLevelCir::paper_default(IndexSpec::pc_xor_bhr(16))),
                Box::new(OneLevelCir::paper_default(IndexSpec::new(
                    vec![IndexSource::Pc, IndexSource::Bhr, IndexSource::GlobalCir],
                    Combine::Xor,
                    16,
                ))),
            ]
        },
        &[],
    );
    let alone = results[0].curve().coverage_at(20.0);
    let base = results[1].curve().coverage_at(20.0);
    let mixed = results[2].curve().coverage_at(20.0);
    println!();
    println!(
        "at 20%: GCIR alone {alone:.1}%, BHRxorPC {base:.1}%, +GCIR {mixed:.1}% \
         (paper: GCIR alone is poor and adding it typically hurts)"
    );
}
