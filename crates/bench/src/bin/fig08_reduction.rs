//! Figure 8: practical reduction functions vs. the ideal reduction (§5.1),
//! all on the best one-level indexing (PC⊕BHR):
//!
//! * full CIRs with the ideal (sorted-pattern) reduction;
//! * full CIRs reduced by **ones counting** (17 data points);
//! * **saturating counters** 0..=16 embedded in the CT;
//! * **resetting counters** 0..=16 embedded in the CT.
//!
//! Paper observations to reproduce:
//! * ones counting matches the ideal zero bucket but falls short elsewhere
//!   (it weighs old and recent mispredictions equally);
//! * saturating counters' maximum-count bucket swells (single mispredictions
//!   vanish after one correct prediction), capping achievable coverage;
//! * resetting counters track the ideal curve closely and share its zero
//!   bucket — the recommended practical design.

use cira_bench::{banner, run_figure, trace_len, zero_bucket_line};
use cira_core::one_level::{MappedKey, OneLevelCir, ResettingConfidence, SaturatingConfidence};
use cira_core::{ConfidenceMechanism, IndexSpec};
use cira_predictor::Gshare;
use cira_trace::suite::ibs_like_suite;

fn main() {
    let len = trace_len();
    banner(
        "Figure 8",
        "Reduction functions on PC xor BHR: ideal vs ones-count vs saturating vs resetting",
        len,
    );
    let suite = ibs_like_suite();

    let series = [
        "BHRxorPC (ideal)",
        "BHRxorPC.1Cnt",
        "BHRxorPC.Sat",
        "BHRxorPC.Reset",
    ];
    let results = run_figure(
        "fig08_reduction",
        &suite,
        len,
        Gshare::paper_large,
        &series,
        || {
            let idx = IndexSpec::pc_xor_bhr(16);
            vec![
                Box::new(OneLevelCir::paper_default(idx.clone())) as Box<dyn ConfidenceMechanism>,
                Box::new(MappedKey::ones_count(OneLevelCir::paper_default(
                    idx.clone(),
                ))),
                Box::new(SaturatingConfidence::paper_default(idx.clone())),
                Box::new(ResettingConfidence::paper_default(idx)),
            ]
        },
        &[],
    );

    println!();
    // Zero-bucket equivalents: key 0 for the CIR and ones-count methods,
    // key 16 (saturated maximum) for the counter methods.
    println!("{}", zero_bucket_line(series[0], &results[0].combined, 0));
    println!("{}", zero_bucket_line(series[1], &results[1].combined, 0));
    println!("{}", zero_bucket_line(series[2], &results[2].combined, 16));
    println!("{}", zero_bucket_line(series[3], &results[3].combined, 16));
    println!();
    println!(
        "paper: saturating max bucket holds noticeably more mispredictions than the \
         ideal zero bucket; resetting matches the ideal zero bucket"
    );
}
