//! Figure 2: cumulative mispredictions vs. cumulative dynamic branches for
//! the idealized **static** (perfect-profile) confidence method (§2).
//!
//! Paper observations to reproduce:
//! * a marked point at (25.2% of dynamic branches, 70.6% of mispredictions);
//! * ≈63% of mispredictions concentrated in 20% of dynamic branches;
//! * a gentle knee compared with the dynamic methods of Fig. 5.

use cira_analysis::export::format_points;
use cira_analysis::Engine;
use cira_bench::{banner, report_curves, trace_len};
use cira_predictor::Gshare;
use cira_trace::suite::ibs_like_suite;

fn main() {
    let len = trace_len();
    banner(
        "Figure 2",
        "Static (perfect-profile) confidence: sorted static branches, worst first",
        len,
    );
    let suite = ibs_like_suite();
    let result = Engine::global().run_suite_static(&suite, len, Gshare::paper_large);
    let curve = result.curve();

    println!(
        "static branches profiled: {}",
        result.combined.distinct_keys()
    );
    println!(
        "paper reference point (25.2, 70.6); measured at 25.2% -> {:.1}%",
        curve.coverage_at(25.2)
    );
    println!(
        "paper: ~63% of mispredictions at 20%; measured {:.1}%",
        curve.coverage_at(20.0)
    );
    println!();
    println!("thinned curve points (2.5% spacing):");
    println!("{}", format_points(&curve.thinned(2.5)));

    report_curves("fig02_static", &[("static".to_string(), curve)]);
}
