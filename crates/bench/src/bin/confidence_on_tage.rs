//! Does the paper's confidence result survive a predictor that knows its
//! own confidence?
//!
//! The paper's mechanisms (CIR, resetting, saturating counters) were
//! designed for predictors that emit a bare taken/not-taken bit. TAGE-class
//! predictors assess themselves: the provider component's counter strength
//! is a confidence signal that costs no extra table. This experiment runs
//! the 64 KiB class of each predictor — gshare, TAGE, TAGE-SC-lite — under
//! the paper's external mechanisms *and* under the `self:` shadow mechanism
//! that buckets on the predictor's own reported strength, and compares the
//! coverage-vs-fraction curves.
//!
//! Two questions, one grid:
//!
//! 1. Do the external mechanisms keep ranking mispredictions well when the
//!    predictor underneath is TAGE-class? (The paper's result should be
//!    robust to the predictor.)
//! 2. Does the free self-assessment beat the dedicated tables?

use cira_analysis::spec::{parse_index, parse_init, parse_mechanism, parse_predictor};
use cira_analysis::{CoverageCurve, Engine};
use cira_bench::{banner, report_curves, trace_len};
use cira_trace::suite::ibs_like_suite;

/// 64 KiB-class configurations, one per predictor family.
const PREDICTORS: [(&str, &str); 3] = [
    ("gshare", "gshare64k"),
    ("tage", "tage64k"),
    ("tage-sc-lite", "tage-sc-lite64k"),
];

/// The paper's mechanisms at their reference settings, plus the
/// shadow-predictor mechanism (`{self}` is replaced per predictor).
const MECHANISMS: [(&str, &str); 4] = [
    ("cir", "cir:16"),
    ("resetting", "resetting:16"),
    ("saturating", "saturating:16"),
    ("self", "self:{self}"),
];

fn main() {
    let len = trace_len();
    banner(
        "Confidence on TAGE",
        "Paper mechanisms vs predictor self-assessment, 64 KiB class",
        len,
    );
    let suite = ibs_like_suite();

    let mut curves: Vec<(String, CoverageCurve)> = Vec::new();
    for (pname, pspec) in PREDICTORS {
        let results = Engine::global().run_suite_mechanisms(
            &suite,
            len,
            || parse_predictor(pspec).unwrap(),
            || {
                MECHANISMS
                    .iter()
                    .map(|(_, mspec)| {
                        let mspec = mspec.replace("{self}", pspec);
                        let index = parse_index("pcxorbhr:16").unwrap();
                        let init = parse_init("ones").unwrap();
                        parse_mechanism(&mspec, index, init).unwrap() as _
                    })
                    .collect()
            },
        );
        for ((mname, _), result) in MECHANISMS.iter().zip(&results) {
            curves.push((format!("{pname}/{mname}"), result.curve()));
        }
    }

    report_curves("confidence_on_tage", &curves);

    let at20 = |name: &str| {
        curves
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c.coverage_at(20.0))
            .unwrap()
    };
    println!();
    println!(
        "at 20% (paper baseline): gshare/resetting {:.1}%  vs  gshare/cir {:.1}%",
        at20("gshare/resetting"),
        at20("gshare/cir"),
    );
    println!(
        "at 20% (mechanisms survive TAGE?): tage/resetting {:.1}%  tage-sc-lite/resetting {:.1}%",
        at20("tage/resetting"),
        at20("tage-sc-lite/resetting"),
    );
    println!(
        "at 20% (self-assessment): gshare/self {:.1}%  tage/self {:.1}%  tage-sc-lite/self {:.1}%",
        at20("gshare/self"),
        at20("tage/self"),
        at20("tage-sc-lite/self"),
    );
}
