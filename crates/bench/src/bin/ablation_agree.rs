//! Ablation: does anti-aliasing prediction (the agree predictor, ISCA
//! 1997) recover the small-table losses of §5.3?
//!
//! The paper attributes the 4K predictor's 8.6% misprediction rate — and
//! the weaker confidence performance on top of it — to aliasing. The agree
//! predictor converts destructive aliasing into (mostly) constructive
//! aliasing via per-branch bias bits. This ablation compares the two at
//! both table sizes, with jackknife error bars across the suite, and then
//! checks how much of the confidence-table performance returns.

use cira_analysis::metrics::jackknife;
use cira_analysis::Engine;
use cira_bench::{banner, trace_len};
use cira_core::one_level::ResettingConfidence;
use cira_core::{IndexSpec, InitPolicy};
use cira_predictor::{Agree, Gshare};
use cira_trace::suite::ibs_like_suite;

fn main() {
    let len = trace_len();
    banner(
        "Ablation: agree predictor vs aliasing",
        "gshare vs agree at 64K and 4K; does fixing aliasing fix small-table confidence?",
        len,
    );
    let suite = ibs_like_suite();

    println!("{:<24} {:>16}", "predictor", "miss rate ± se");
    for (name, runs) in [
        (
            "gshare 64K",
            Engine::global().run_suite_predictor(&suite, len, Gshare::paper_large),
        ),
        (
            "agree 64K",
            Engine::global().run_suite_predictor(&suite, len, || Agree::new(16, 16, 16)),
        ),
        (
            "gshare 4K",
            Engine::global().run_suite_predictor(&suite, len, Gshare::paper_small),
        ),
        (
            "agree 4K",
            Engine::global().run_suite_predictor(&suite, len, || Agree::new(12, 12, 12)),
        ),
    ] {
        let rates: Vec<f64> = runs.iter().map(|(_, r)| 100.0 * r.miss_rate()).collect();
        let (mean, se) = jackknife(&rates);
        println!("{name:<24} {mean:>9.2}% ± {se:.2}");
    }

    println!();
    println!("confidence on top (resetting counters, PC xor BHR, CT = predictor size):");
    println!("{:<24} {:>20}", "configuration", "coverage@20% ± se");
    for (name, result) in [
        (
            "gshare 4K + CT 4K",
            Engine::global().run_suite_mechanism(&suite, len, Gshare::paper_small, || {
                ResettingConfidence::new(IndexSpec::pc_xor_bhr(12), 16, InitPolicy::AllOnes)
            }),
        ),
        (
            "agree 4K + CT 4K",
            Engine::global().run_suite_mechanism(
                &suite,
                len,
                || Agree::new(12, 12, 12),
                || ResettingConfidence::new(IndexSpec::pc_xor_bhr(12), 16, InitPolicy::AllOnes),
            ),
        ),
    ] {
        let per: Vec<f64> = result
            .per_benchmark
            .iter()
            .map(|(_, s)| cira_analysis::CoverageCurve::from_buckets(s).coverage_at(20.0))
            .collect();
        let (mean, se) = jackknife(&per);
        println!("{name:<24} {mean:>16.1}% ± {se:.1}");
    }
    println!();
    println!(
        "reading: if agree closes part of the gshare 64K->4K gap, aliasing is confirmed\n\
         as the §5.3 culprit; the confidence table's own aliasing remains either way"
    );
}
