//! Figure 7: comparison of the best one-level method (PC⊕BHR), the best
//! two-level method (PC⊕BHR → CIR), and the static method.
//!
//! Paper observation to reproduce: the one- and two-level methods are very
//! similar (the two-level, if anything, *slightly worse*), so the second
//! table is not worth its cost — the paper's central negative result.

use cira_analysis::Engine;
use cira_bench::{banner, run_figure, trace_len};
use cira_core::one_level::OneLevelCir;
use cira_core::two_level::TwoLevelCir;
use cira_core::{ConfidenceMechanism, IndexSpec};
use cira_predictor::Gshare;
use cira_trace::suite::ibs_like_suite;

fn main() {
    let len = trace_len();
    banner(
        "Figure 7",
        "Best one-level vs best two-level vs static",
        len,
    );
    let suite = ibs_like_suite();
    let static_curve = Engine::global().run_suite_static(&suite, len, Gshare::paper_large).curve();

    let results = run_figure(
        "fig07_compare",
        &suite,
        len,
        Gshare::paper_large,
        &["BHRxorPC", "BHRxorPC-CIR"],
        || {
            vec![
                Box::new(OneLevelCir::paper_default(IndexSpec::pc_xor_bhr(16)))
                    as Box<dyn ConfidenceMechanism>,
                Box::new(TwoLevelCir::variant_pcxorbhr_cir()),
            ]
        },
        &[("static", static_curve)],
    );

    let one = results[0].curve().coverage_at(20.0);
    let two = results[1].curve().coverage_at(20.0);
    println!();
    println!(
        "at 20%: one-level {one:.1}% vs two-level {two:.1}% (paper: nearly equal, \
         two-level very slightly worse)"
    );
}
