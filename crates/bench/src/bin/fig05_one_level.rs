//! Figure 5: one-level dynamic confidence methods with the ideal reduction
//! function (§4.1), indexing the 2^16-entry CIR table with PC, global BHR,
//! and PC⊕BHR.
//!
//! Paper observations to reproduce (at a 20%-of-branches budget):
//! * PC⊕BHR concentrates ≈89% of mispredictions (best);
//! * BHR alone ≈85%; PC alone ≈72%; the static method only ≈63%;
//! * the all-zeros "zero bucket" holds ≈80% of references and 12–15% of
//!   mispredictions for the two better methods.

use cira_analysis::Engine;
use cira_bench::{banner, run_figure, trace_len, zero_bucket_line};
use cira_core::one_level::OneLevelCir;
use cira_core::{ConfidenceMechanism, IndexSpec};
use cira_predictor::Gshare;
use cira_trace::suite::ibs_like_suite;

fn main() {
    let len = trace_len();
    banner(
        "Figure 5",
        "One-level dynamic confidence (ideal reduction): PC vs BHR vs PC xor BHR",
        len,
    );
    let suite = ibs_like_suite();

    let static_curve = Engine::global().run_suite_static(&suite, len, Gshare::paper_large).curve();

    let series = ["PC", "BHR", "BHRxorPC"];
    let results = run_figure(
        "fig05_one_level",
        &suite,
        len,
        Gshare::paper_large,
        &series,
        || {
            vec![
                Box::new(OneLevelCir::paper_default(IndexSpec::pc(16)))
                    as Box<dyn ConfidenceMechanism>,
                Box::new(OneLevelCir::paper_default(IndexSpec::bhr(16))),
                Box::new(OneLevelCir::paper_default(IndexSpec::pc_xor_bhr(16))),
            ]
        },
        &[("static", static_curve)],
    );

    println!();
    for (name, r) in series.iter().zip(&results) {
        println!("{}", zero_bucket_line(name, &r.combined, 0));
    }
    println!();
    println!("paper at 20%: PCxorBHR 89%, BHR 85%, PC 72%, static ~63%");
}
