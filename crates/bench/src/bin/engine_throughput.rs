//! Perf smoke test for the shared execution engine.
//!
//! Times the fixed grid — the IBS-like suite × 8 resetting-counter
//! configurations × `CIRA_TRACE_LEN` (default 1M) branches — three ways:
//!
//! * **legacy**: the pre-engine path, reproduced verbatim — every
//!   configuration regenerates each benchmark's synthetic trace and drives
//!   the per-record [`cira_analysis::runner`] loop, one scoped thread per
//!   benchmark (parallelism capped at the suite size);
//! * **engine-scalar**: [`Engine::run_grid`] with the batched kernels
//!   suppressed via [`ScalarKernel`]/[`ScalarObserve`] — shared
//!   materialized traces and the work-stealing pool, but the trait-default
//!   per-record loops inside each chunk;
//! * **engine**: the same grid with the vectorized kernels — lane-parallel
//!   history fill, SWAR pattern tables, batched mechanism observe.
//!
//! All paths compute identical statistics (asserted below) — this binary
//! measures only how fast they get there. Each path is timed best-of-`REPS`
//! to keep scheduler noise out of the comparison. Results go to
//! `BENCH_engine.json`: wall-clock seconds, simulated branches/second, and
//! the `kernel` each path ran, plus the recording toolchain.

use std::time::Instant;

use cira_analysis::engine::Engine;
use cira_analysis::SuiteBuckets;
use cira_analysis::{runner, BucketStats};
use cira_bench::{banner, rustc_version, trace_len};
use cira_core::one_level::ResettingConfidence;
use cira_core::{ConfidenceMechanism, IndexSpec, InitPolicy, ScalarObserve};
use cira_predictor::{Gshare, ScalarKernel};
use cira_trace::suite::{ibs_like_suite, Benchmark};

/// The 8 grid configurations: resetting counters (the paper's recommended
/// practical design) across table sizes and saturation values.
#[derive(Debug, Clone, Copy)]
struct GridConfig {
    index_bits: u32,
    max: u32,
}

const CONFIGS: [GridConfig; 8] = [
    GridConfig { index_bits: 10, max: 8 },
    GridConfig { index_bits: 10, max: 16 },
    GridConfig { index_bits: 12, max: 8 },
    GridConfig { index_bits: 12, max: 16 },
    GridConfig { index_bits: 14, max: 16 },
    GridConfig { index_bits: 16, max: 8 },
    GridConfig { index_bits: 16, max: 16 },
    GridConfig { index_bits: 16, max: 32 },
];

/// Timing repetitions per path; the minimum wall time wins.
const REPS: usize = 5;

fn mechanism(c: &GridConfig) -> ResettingConfidence {
    ResettingConfidence::new(
        IndexSpec::pc_xor_bhr(c.index_bits),
        c.max,
        InitPolicy::AllOnes,
    )
}

/// The pre-engine path: per configuration, regenerate every benchmark's
/// trace from its walker and run the per-record loop, one thread per
/// benchmark (this is what `run_suite_mechanism` did before the engine).
fn run_legacy(suite: &[Benchmark], len: u64) -> Vec<Vec<(String, BucketStats)>> {
    CONFIGS
        .iter()
        .map(|config| {
            std::thread::scope(|scope| {
                let handles: Vec<_> = suite
                    .iter()
                    .map(|bench| {
                        scope.spawn(move || {
                            let mut predictor = Gshare::paper_large();
                            let mut mech = mechanism(config);
                            (
                                bench.name().to_owned(),
                                runner::collect_mechanism_buckets(
                                    bench.walker().take(len as usize),
                                    &mut predictor,
                                    &mut mech,
                                ),
                            )
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
        })
        .collect()
}

/// The engine path with the vectorized kernels (the production default).
fn run_engine(suite: &[Benchmark], len: u64) -> Vec<SuiteBuckets> {
    Engine::global()
        .run_grid(suite, len, &CONFIGS, |_| Gshare::paper_large(), |c| {
            vec![Box::new(mechanism(c)) as Box<dyn ConfidenceMechanism>]
        })
        .into_iter()
        .map(|mut row| row.pop().expect("one series per config"))
        .collect()
}

/// The engine path with batched kernels suppressed: identical scheduling
/// and trace sharing, but the per-record scalar loops inside each chunk —
/// isolating the vectorized kernel's contribution.
fn run_engine_scalar(suite: &[Benchmark], len: u64) -> Vec<SuiteBuckets> {
    Engine::global()
        .run_grid(
            suite,
            len,
            &CONFIGS,
            |_| ScalarKernel(Gshare::paper_large()),
            |c| vec![Box::new(ScalarObserve(mechanism(c))) as Box<dyn ConfidenceMechanism>],
        )
        .into_iter()
        .map(|mut row| row.pop().expect("one series per config"))
        .collect()
}

fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let value = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(value);
    }
    (best, out.expect("reps > 0"))
}

fn main() {
    let len = trace_len();
    banner(
        "Engine throughput",
        "Legacy per-config regeneration vs shared engine (scalar and vectorized kernels)",
        len,
    );
    let suite = ibs_like_suite();
    let total_branches = (suite.len() * CONFIGS.len()) as u64 * len;
    println!(
        "grid: {} benchmarks x {} configs x {} branches = {} simulated branches per path",
        suite.len(),
        CONFIGS.len(),
        len,
        total_branches
    );
    let host_cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    println!(
        "engine workers: {} (host cores: {host_cores}); best of {REPS} runs per path; {}",
        Engine::global().pool().workers(),
        rustc_version(),
    );
    println!();

    let bps = |secs: f64| 1e-6 * total_branches as f64 / secs;

    let (legacy_secs, legacy) = best_of(REPS, || run_legacy(&suite, len));
    println!("legacy:        {legacy_secs:8.2}s  ({:.1}M branches/s)  [scalar]", bps(legacy_secs));

    let (scalar_secs, engine_scalar) = best_of(REPS, || run_engine_scalar(&suite, len));
    println!("engine-scalar: {scalar_secs:8.2}s  ({:.1}M branches/s)  [scalar]", bps(scalar_secs));

    let (engine_secs, engine) = best_of(REPS, || run_engine(&suite, len));
    println!("engine:        {engine_secs:8.2}s  ({:.1}M branches/s)  [simd]", bps(engine_secs));

    // The speedup only counts if the answers agree, bit for bit.
    for (ci, (legacy_row, engine_row)) in legacy.iter().zip(&engine).enumerate() {
        assert_eq!(
            legacy_row.len(),
            engine_row.per_benchmark.len(),
            "config {ci}: benchmark count"
        );
        for ((ln, ls), (en, es)) in legacy_row.iter().zip(&engine_row.per_benchmark) {
            assert_eq!(ln, en, "config {ci}: benchmark order");
            assert_eq!(ls, es, "config {ci}, {ln}: buckets must be bit-identical");
        }
    }
    for (ci, (scalar_row, engine_row)) in engine_scalar.iter().zip(&engine).enumerate() {
        assert_eq!(
            scalar_row.per_benchmark, engine_row.per_benchmark,
            "config {ci}: scalar and vectorized kernels must agree"
        );
    }
    println!("checked: all three paths bit-identical");

    let speedup = legacy_secs / engine_secs;
    let kernel_speedup = scalar_secs / engine_secs;
    println!();
    println!("speedup vs legacy: {speedup:.2}x   vectorized kernel vs scalar kernel: {kernel_speedup:.2}x");

    let json = format!(
        "{{\n  \"grid\": {{\"benchmarks\": {}, \"configs\": {}, \"trace_len\": {}, \"total_branches\": {}}},\n  \"workers\": {},\n  \"host_cores\": {},\n  \"reps\": {REPS},\n  \"rustc\": \"{}\",\n  \"legacy\": {{\"kernel\": \"scalar\", \"wall_seconds\": {:.4}, \"branches_per_sec\": {:.0}}},\n  \"engine_scalar\": {{\"kernel\": \"scalar\", \"wall_seconds\": {:.4}, \"branches_per_sec\": {:.0}}},\n  \"engine\": {{\"kernel\": \"simd\", \"wall_seconds\": {:.4}, \"branches_per_sec\": {:.0}}},\n  \"speedup\": {:.3},\n  \"kernel_speedup\": {:.3},\n  \"bit_identical\": true\n}}\n",
        suite.len(),
        CONFIGS.len(),
        len,
        total_branches,
        Engine::global().pool().workers(),
        host_cores,
        rustc_version(),
        legacy_secs,
        total_branches as f64 / legacy_secs,
        scalar_secs,
        total_branches as f64 / scalar_secs,
        engine_secs,
        total_branches as f64 / engine_secs,
        speedup,
        kernel_speedup,
    );
    match std::fs::write("BENCH_engine.json", &json) {
        Ok(()) => println!("wrote BENCH_engine.json"),
        Err(e) => cira_obs::warn!("could not write BENCH_engine.json", error = e),
    }
}
