//! Smoke tests: every experiment binary runs to completion at reduced
//! trace length and prints its key result markers.

use std::process::Command;

fn run(bin_path: &str, expect: &[&str]) {
    let out = Command::new(bin_path)
        .env("CIRA_TRACE_LEN", "4000")
        .env(
            "CIRA_RESULTS_DIR",
            std::env::temp_dir().join("cira_smoke_results"),
        )
        .output()
        .expect("binary launches");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "{bin_path} failed:\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    for marker in expect {
        assert!(
            stdout.contains(marker),
            "{bin_path}: missing {marker:?} in output:\n{stdout}"
        );
    }
}

#[test]
fn calibration_runs() {
    run(
        env!("CARGO_BIN_EXE_calibration"),
        &["benchmark", "average", "paper"],
    );
}

#[test]
fn fig02_runs() {
    run(
        env!("CARGO_BIN_EXE_fig02_static"),
        &["static branches profiled", "measured"],
    );
}

#[test]
fn fig05_runs() {
    run(
        env!("CARGO_BIN_EXE_fig05_one_level"),
        &["BHRxorPC", "zero bucket", "paper at 20%"],
    );
}

#[test]
fn fig06_runs() {
    run(
        env!("CARGO_BIN_EXE_fig06_two_level"),
        &["BHRxorPC-CIR", "static"],
    );
}

#[test]
fn fig07_runs() {
    run(
        env!("CARGO_BIN_EXE_fig07_compare"),
        &["one-level", "two-level"],
    );
}

#[test]
fn fig08_runs() {
    run(
        env!("CARGO_BIN_EXE_fig08_reduction"),
        &["BHRxorPC.Reset", "BHRxorPC.Sat", "zero bucket"],
    );
}

#[test]
fn table1_runs() {
    run(
        env!("CARGO_BIN_EXE_table1_resetting"),
        &["Count", "counts 0..=15", "paper"],
    );
}

#[test]
fn fig09_runs() {
    run(
        env!("CARGO_BIN_EXE_fig09_benchmarks"),
        &["jpeg", "gcc", "coverage@20%"],
    );
}

#[test]
fn fig10_runs() {
    run(env!("CARGO_BIN_EXE_fig10_small_tables"), &["4096", "128"]);
}

#[test]
fn fig11_runs() {
    run(
        env!("CARGO_BIN_EXE_fig11_init"),
        &["one", "zero", "lastbit", "random"],
    );
}

#[test]
fn ablation_index_hash_runs() {
    run(
        env!("CARGO_BIN_EXE_ablation_index_hash"),
        &["xor", "concat"],
    );
}

#[test]
fn ablation_global_cir_runs() {
    run(env!("CARGO_BIN_EXE_ablation_global_cir"), &["GCIR"]);
}

#[test]
fn ablation_counter_width_runs() {
    run(
        env!("CARGO_BIN_EXE_ablation_counter_width"),
        &["max=4", "max=64"],
    );
}

#[test]
fn ablation_context_switch_runs() {
    run(
        env!("CARGO_BIN_EXE_ablation_context_switch"),
        &["ones", "zeros", "lastbit", "no flush"],
    );
}

#[test]
fn ablation_agree_runs() {
    run(
        env!("CARGO_BIN_EXE_ablation_agree"),
        &["gshare 4K", "agree 4K"],
    );
}

#[test]
fn roc_resetting_runs() {
    run(env!("CARGO_BIN_EXE_roc_resetting"), &["threshold", "PVN"]);
}

#[test]
fn pipeline_gating_runs() {
    run(
        env!("CARGO_BIN_EXE_pipeline_gating"),
        &["never gate (baseline)", "no speculation"],
    );
}

#[test]
fn probe_runs() {
    run(env!("CARGO_BIN_EXE_probe"), &["bench"]);
}
