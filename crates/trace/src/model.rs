//! Per-branch behaviour models for synthetic workloads.
//!
//! Each static branch in a synthetic program is assigned a [`Behavior`] that
//! determines its outcome whenever it executes. The models are chosen to
//! span the behaviours that drive branch-predictor (and therefore
//! confidence-mechanism) dynamics in real programs:
//!
//! * [`Behavior::Loop`] — backward loop branches: taken for the loop body,
//!   not-taken once on exit. Trip counts come from a [`TripCount`]
//!   distribution; fixed short trips are perfectly learnable by a history
//!   predictor, variable trips mispredict roughly once per loop visit.
//! * [`Behavior::Bias`] — independent Bernoulli branches with a fixed taken
//!   probability (data-dependent tests). A counter predictor converges on
//!   the majority direction and mispredicts at `min(p, 1-p)`.
//! * [`Behavior::Correlated`] — outcome is a boolean function (parity) of
//!   selected recent *global* outcomes, optionally flipped with a small
//!   noise probability. These reward history-indexed predictors and are the
//!   reason dynamic confidence beats static profiling in the paper.
//! * [`Behavior::Pattern`] — short periodic sequences (alternating guards,
//!   unrolled-loop residues); learnable when the period fits in history.

use crate::rng::{SplitMix64, Xoshiro256StarStar};

/// Distribution of loop trip counts (number of *taken* iterations before the
/// not-taken exit).
#[derive(Debug, Clone, PartialEq)]
pub enum TripCount {
    /// Always exactly `n` iterations.
    Fixed(u32),
    /// Uniform in `[lo, hi]` inclusive.
    Uniform(u32, u32),
    /// Geometric with the given mean, capped at `cap` iterations.
    Geometric {
        /// Mean number of iterations.
        mean: f64,
        /// Hard upper bound on a single draw.
        cap: u32,
    },
}

impl TripCount {
    /// Draws one trip count.
    ///
    /// # Panics
    ///
    /// Panics if a `Uniform` variant has `lo > hi`.
    pub fn sample(&self, rng: &mut Xoshiro256StarStar) -> u32 {
        match *self {
            TripCount::Fixed(n) => n,
            TripCount::Uniform(lo, hi) => {
                assert!(lo <= hi, "TripCount::Uniform requires lo <= hi");
                rng.range_inclusive(lo as u64, hi as u64) as u32
            }
            TripCount::Geometric { mean, cap } => {
                if mean <= 0.0 {
                    return 0;
                }
                let p = 1.0 / (mean + 1.0);
                rng.geometric(p, cap as u64) as u32
            }
        }
    }

    /// The distribution's mean trip count.
    pub fn mean(&self) -> f64 {
        match *self {
            TripCount::Fixed(n) => n as f64,
            TripCount::Uniform(lo, hi) => (lo as f64 + hi as f64) / 2.0,
            TripCount::Geometric { mean, cap } => mean.min(cap as f64),
        }
    }
}

/// The behaviour model of one static branch.
#[derive(Debug, Clone, PartialEq)]
pub enum Behavior {
    /// A loop-closing branch; see [`TripCount`].
    Loop(TripCount),
    /// Independent Bernoulli branch taken with probability `p_taken`.
    Bias {
        /// Probability that the branch is taken.
        p_taken: f64,
    },
    /// Parity of selected recent global outcomes, with noise.
    Correlated {
        /// History offsets (1 = most recent global outcome) whose parity
        /// decides the direction. Offsets must be in `1..=64`.
        deps: Vec<u8>,
        /// If `true`, the parity is inverted.
        invert: bool,
        /// Probability the computed direction is flipped (models data
        /// dependence the history cannot capture).
        noise: f64,
    },
    /// A fixed repeating outcome pattern.
    Pattern {
        /// The repeating outcomes, earliest first. Must be nonempty.
        bits: Vec<bool>,
    },
    /// A context mixture: for most 16-bit global-history contexts the
    /// outcome is a fixed (hash-derived) direction — perfectly learnable —
    /// while a `hard_frac` fraction of contexts are permanently 50/50.
    ///
    /// This reproduces how real hard branches behave: mispredictions
    /// concentrate in specific recurring contexts instead of arriving
    /// i.i.d., which is what gives confidence tables their discriminating
    /// power (the paper's zero-bucket structure).
    ContextHard {
        /// Per-branch salt making context hashes independent across
        /// branches.
        salt: u64,
        /// Fraction of contexts that are permanently hard (50/50). The
        /// asymptotic misprediction rate is ≈ `hard_frac / 2`.
        hard_frac: f64,
    },
}

impl Behavior {
    /// Convenience constructor for a correlated branch.
    ///
    /// # Panics
    ///
    /// Panics if any dependency offset is 0 or greater than 64.
    pub fn correlated(deps: Vec<u8>, invert: bool, noise: f64) -> Self {
        assert!(
            deps.iter().all(|&d| (1..=64).contains(&d)),
            "correlated deps must be history offsets in 1..=64"
        );
        Behavior::Correlated {
            deps,
            invert,
            noise,
        }
    }

    /// Convenience constructor for a context-mixture branch.
    pub fn context_hard(salt: u64, hard_frac: f64) -> Self {
        Behavior::ContextHard { salt, hard_frac }
    }

    /// Expected outcomes emitted per execution of the owning slot
    /// (loops emit `mean + 1` records, everything else exactly one).
    pub fn mean_records_per_visit(&self) -> f64 {
        match self {
            Behavior::Loop(trip) => trip.mean() + 1.0,
            _ => 1.0,
        }
    }
}

/// Mutable per-branch state carried between executions.
///
/// Only [`Behavior::Pattern`] needs state (its phase); kept as a struct so
/// more stateful behaviours can be added without changing call sites.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BehaviorState {
    pattern_pos: usize,
}

impl BehaviorState {
    /// Fresh state for a branch that has not executed yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluates a non-loop behaviour once, returning the outcome.
    ///
    /// `global_history` holds the most recent global outcomes with bit 0 the
    /// most recent (1 = taken), as maintained by the program walker.
    ///
    /// # Panics
    ///
    /// Panics if called on [`Behavior::Loop`] (loops are expanded by the
    /// walker, which emits their taken/not-taken sequence directly) or on an
    /// empty pattern.
    pub fn evaluate(
        &mut self,
        behavior: &Behavior,
        global_history: u64,
        rng: &mut Xoshiro256StarStar,
    ) -> bool {
        match behavior {
            Behavior::Loop(_) => {
                panic!("loop branches are expanded by the walker, not evaluated pointwise")
            }
            Behavior::Bias { p_taken } => rng.bernoulli(*p_taken),
            Behavior::Correlated {
                deps,
                invert,
                noise,
            } => {
                let mut parity = *invert;
                for &d in deps {
                    let bit = (global_history >> (d - 1)) & 1 == 1;
                    parity ^= bit;
                }
                if rng.bernoulli(*noise) {
                    !parity
                } else {
                    parity
                }
            }
            Behavior::Pattern { bits } => {
                assert!(!bits.is_empty(), "pattern must be nonempty");
                let out = bits[self.pattern_pos % bits.len()];
                self.pattern_pos = (self.pattern_pos + 1) % bits.len();
                out
            }
            Behavior::ContextHard { salt, hard_frac } => {
                let h = SplitMix64::mix(salt ^ (global_history & 0xffff));
                let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                if u < *hard_frac {
                    rng.bernoulli(0.5)
                } else {
                    h & (1 << 60) != 0
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(1)
    }

    #[test]
    fn fixed_trip_is_constant() {
        let mut r = rng();
        let t = TripCount::Fixed(7);
        for _ in 0..10 {
            assert_eq!(t.sample(&mut r), 7);
        }
        assert_eq!(t.mean(), 7.0);
    }

    #[test]
    fn uniform_trip_within_bounds() {
        let mut r = rng();
        let t = TripCount::Uniform(3, 9);
        for _ in 0..1000 {
            let v = t.sample(&mut r);
            assert!((3..=9).contains(&v));
        }
        assert_eq!(t.mean(), 6.0);
    }

    #[test]
    fn geometric_trip_mean_roughly_right() {
        let mut r = rng();
        let t = TripCount::Geometric {
            mean: 10.0,
            cap: 10_000,
        };
        let n = 50_000;
        let total: u64 = (0..n).map(|_| t.sample(&mut r) as u64).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn geometric_trip_zero_mean() {
        let mut r = rng();
        let t = TripCount::Geometric { mean: 0.0, cap: 10 };
        assert_eq!(t.sample(&mut r), 0);
    }

    #[test]
    fn bias_behavior_frequency() {
        let mut r = rng();
        let b = Behavior::Bias { p_taken: 0.8 };
        let mut st = BehaviorState::new();
        let n = 100_000;
        let taken = (0..n).filter(|_| st.evaluate(&b, 0, &mut r)).count();
        let f = taken as f64 / n as f64;
        assert!((f - 0.8).abs() < 0.01, "freq {f}");
    }

    #[test]
    fn correlated_parity_no_noise() {
        let mut r = rng();
        let b = Behavior::correlated(vec![1, 3], false, 0.0);
        let mut st = BehaviorState::new();
        // history bits: bit0 (offset 1) = 1, bit2 (offset 3) = 1 -> parity 0
        assert!(!st.evaluate(&b, 0b101, &mut r));
        // bit0 = 1, bit2 = 0 -> parity 1
        assert!(st.evaluate(&b, 0b001, &mut r));
    }

    #[test]
    fn correlated_invert_flips() {
        let mut r = rng();
        let b = Behavior::correlated(vec![2], true, 0.0);
        let mut st = BehaviorState::new();
        assert!(st.evaluate(&b, 0b00, &mut r));
        assert!(!st.evaluate(&b, 0b10, &mut r));
    }

    #[test]
    fn correlated_noise_flips_sometimes() {
        let mut r = rng();
        let b = Behavior::correlated(vec![1], false, 0.25);
        let mut st = BehaviorState::new();
        let n = 40_000;
        // with history 0 parity is false; flips happen with p=0.25
        let flips = (0..n).filter(|_| st.evaluate(&b, 0, &mut r)).count();
        let f = flips as f64 / n as f64;
        assert!((f - 0.25).abs() < 0.02, "flip rate {f}");
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn correlated_offset_zero_panics() {
        Behavior::correlated(vec![0], false, 0.0);
    }

    #[test]
    fn pattern_cycles() {
        let mut r = rng();
        let b = Behavior::Pattern {
            bits: vec![true, true, false],
        };
        let mut st = BehaviorState::new();
        let out: Vec<bool> = (0..7).map(|_| st.evaluate(&b, 0, &mut r)).collect();
        assert_eq!(out, vec![true, true, false, true, true, false, true]);
    }

    #[test]
    fn context_hard_is_deterministic_on_easy_contexts() {
        let mut r = rng();
        let b = Behavior::context_hard(42, 0.0); // no hard contexts
        let mut st = BehaviorState::new();
        for hist in 0..200u64 {
            let a = st.evaluate(&b, hist, &mut r);
            let c = st.evaluate(&b, hist, &mut r);
            assert_eq!(a, c, "easy context {hist} must be deterministic");
        }
    }

    #[test]
    fn context_hard_fraction_is_respected() {
        let mut r = rng();
        let b = Behavior::context_hard(7, 0.3);
        let mut st = BehaviorState::new();
        // A context is hard iff two evaluations can differ; estimate the
        // hard fraction over many contexts.
        let mut hard = 0;
        let n = 2000u64;
        for hist in 0..n {
            let first = st.evaluate(&b, hist, &mut r);
            let mut differs = false;
            for _ in 0..12 {
                if st.evaluate(&b, hist, &mut r) != first {
                    differs = true;
                    break;
                }
            }
            if differs {
                hard += 1;
            }
        }
        let frac = hard as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.06, "hard fraction {frac}");
    }

    #[test]
    fn context_hard_salt_changes_mapping() {
        let mut r = rng();
        let mut st = BehaviorState::new();
        let a = Behavior::context_hard(1, 0.0);
        let b = Behavior::context_hard(2, 0.0);
        let same = (0..64u64)
            .filter(|&h| st.evaluate(&a, h, &mut r) == st.evaluate(&b, h, &mut r))
            .count();
        assert!(same < 55, "salts should decorrelate directions: {same}");
    }

    #[test]
    #[should_panic(expected = "expanded by the walker")]
    fn loop_pointwise_evaluation_panics() {
        let mut r = rng();
        let b = Behavior::Loop(TripCount::Fixed(3));
        BehaviorState::new().evaluate(&b, 0, &mut r);
    }

    #[test]
    fn mean_records_per_visit() {
        assert_eq!(
            Behavior::Loop(TripCount::Fixed(4)).mean_records_per_visit(),
            5.0
        );
        assert_eq!(
            Behavior::Bias { p_taken: 0.5 }.mean_records_per_visit(),
            1.0
        );
    }
}
