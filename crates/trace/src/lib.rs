//! # cira-trace
//!
//! Branch trace substrate for the `cira` workspace — the reproduction of
//! Jacobsen, Rotenberg & Smith, *"Assigning Confidence to Conditional Branch
//! Predictions"* (MICRO-29, 1996).
//!
//! Everything downstream (predictors, confidence mechanisms, analyses)
//! consumes a stream of [`BranchRecord`]s. This crate provides:
//!
//! * [`record`] — the record type, the replayable [`TraceSource`] trait, and
//!   one-pass [`TraceStats`].
//! * [`rng`] — deterministic PRNGs so traces are bit-stable forever.
//! * [`model`] / [`program`] — per-branch behaviour models and the Markov
//!   region walker that generates synthetic workloads.
//! * [`suite`] — the IBS-like benchmark suite substituting for the paper's
//!   (unavailable) IBS traces; see `DESIGN.md` §3.
//! * [`tinyvm`] — a small register VM with an assembler whose real control
//!   flow yields organic branch traces for examples and tests.
//! * [`codec`] — a compact binary trace file format.
//! * [`transform`] — rebasing, concatenation, interleaving, sampling.
//!
//! # Quick start
//!
//! ```
//! use cira_trace::suite::ibs_like_suite;
//! use cira_trace::TraceStats;
//!
//! let suite = ibs_like_suite();
//! let stats: TraceStats = suite[0].walker().take(10_000).collect();
//! assert_eq!(stats.dynamic_branches(), 10_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod model;
pub mod program;
pub mod record;
pub mod rng;
pub mod suite;
pub mod tinyvm;
pub mod transform;

pub use record::{BranchRecord, TraceSource, TraceStats, VecTrace};
