//! Compact binary trace files.
//!
//! Format (`CIRT` v1): an 8-byte header (`b"CIRT"`, `u8` version, 3 reserved
//! bytes) followed by one LEB128 varint per record. Each record is encoded
//! as `zigzag(pc - prev_pc) * 2 + taken`, exploiting the strong locality of
//! branch PCs: the typical record costs 1–2 bytes instead of 9.
//!
//! # Examples
//!
//! ```
//! use cira_trace::{BranchRecord, codec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let records = vec![BranchRecord::new(0x4000, true), BranchRecord::new(0x4004, false)];
//! let mut buf = Vec::new();
//! codec::write_trace(&mut buf, records.iter().copied())?;
//! let back = codec::read_trace(&buf[..])?;
//! assert_eq!(back, records);
//! # Ok(())
//! # }
//! ```

use std::fmt;
use std::io::{self, Read, Write};

use crate::record::BranchRecord;

const MAGIC: &[u8; 4] = b"CIRT";
const VERSION: u8 = 1;

/// Errors produced when decoding a trace file.
#[derive(Debug)]
pub enum DecodeTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the `CIRT` magic.
    BadMagic([u8; 4]),
    /// The format version is not supported.
    UnsupportedVersion(u8),
    /// A varint ran past 10 bytes (not a valid LEB128 `u64`).
    VarintOverflow,
    /// The stream ended in the middle of a varint.
    TruncatedRecord,
}

impl fmt::Display for DecodeTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeTraceError::Io(e) => write!(f, "i/o error: {e}"),
            DecodeTraceError::BadMagic(m) => write!(f, "bad magic {m:?}, expected \"CIRT\""),
            DecodeTraceError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            DecodeTraceError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            DecodeTraceError::TruncatedRecord => write!(f, "stream ended mid-record"),
        }
    }
}

impl std::error::Error for DecodeTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DecodeTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DecodeTraceError {
    fn from(e: io::Error) -> Self {
        DecodeTraceError::Io(e)
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// Record words are 65 bits (zigzag delta plus the taken bit), so varints are
// carried in u128 and capped at 10 LEB128 bytes (70 payload bits).
const MAX_VARINT_BITS: u32 = 70;

fn write_varint<W: Write>(w: &mut W, mut v: u128) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Reads one varint; `Ok(None)` on clean EOF at a record boundary.
fn read_varint<R: Read>(r: &mut R) -> Result<Option<u128>, DecodeTraceError> {
    let mut v: u128 = 0;
    let mut shift = 0u32;
    let mut first = true;
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                return if first {
                    Ok(None)
                } else {
                    Err(DecodeTraceError::TruncatedRecord)
                };
            }
            Ok(_) => {}
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
        if shift >= MAX_VARINT_BITS {
            return Err(DecodeTraceError::VarintOverflow);
        }
        v |= ((byte[0] & 0x7f) as u128) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(Some(v));
        }
        shift += 7;
        first = false;
    }
}

/// Writes a trace to `writer`. A `&mut W` also works (`W: Write` is taken by
/// value per the usual reader/writer convention).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write, I: IntoIterator<Item = BranchRecord>>(
    mut writer: W,
    records: I,
) -> io::Result<u64> {
    writer.write_all(MAGIC)?;
    writer.write_all(&[VERSION, 0, 0, 0])?;
    let mut prev_pc: u64 = 0;
    let mut count = 0u64;
    for r in records {
        let delta = r.pc.wrapping_sub(prev_pc) as i64;
        let word = ((zigzag(delta) as u128) << 1) | r.taken as u128;
        write_varint(&mut writer, word)?;
        prev_pc = r.pc;
        count += 1;
    }
    cira_obs::debug!("trace encoded", records = count);
    Ok(count)
}

/// Reads an entire trace into memory.
///
/// # Errors
///
/// Returns [`DecodeTraceError`] on malformed input or I/O failure.
pub fn read_trace<R: Read>(reader: R) -> Result<Vec<BranchRecord>, DecodeTraceError> {
    let records: Vec<BranchRecord> = TraceReader::new(reader)?.collect::<Result<_, _>>()?;
    cira_obs::debug!("trace decoded", records = records.len());
    Ok(records)
}

/// Streaming trace decoder; yields records one at a time.
#[derive(Debug)]
pub struct TraceReader<R> {
    reader: R,
    prev_pc: u64,
}

impl<R: Read> TraceReader<R> {
    /// Validates the header and prepares to stream records.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeTraceError`] if the magic or version is wrong.
    pub fn new(mut reader: R) -> Result<Self, DecodeTraceError> {
        let mut header = [0u8; 8];
        reader
            .read_exact(&mut header)
            .map_err(DecodeTraceError::Io)?;
        if &header[0..4] != MAGIC {
            let mut m = [0u8; 4];
            m.copy_from_slice(&header[0..4]);
            return Err(DecodeTraceError::BadMagic(m));
        }
        if header[4] != VERSION {
            return Err(DecodeTraceError::UnsupportedVersion(header[4]));
        }
        Ok(Self { reader, prev_pc: 0 })
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<BranchRecord, DecodeTraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        match read_varint(&mut self.reader) {
            Ok(None) => None,
            Ok(Some(word)) => {
                let taken = word & 1 == 1;
                let delta = unzigzag((word >> 1) as u64);
                let pc = self.prev_pc.wrapping_add(delta as u64);
                self.prev_pc = pc;
                Some(Ok(BranchRecord::new(pc, taken)))
            }
            Err(e) => Some(Err(e)),
        }
    }
}

/// A materialized branch trace in a packed structure-of-arrays encoding.
///
/// Branch traces revisit a small set of static sites, so instead of storing
/// 9+ bytes per [`BranchRecord`], a `PackedTrace` stores each distinct PC
/// once in a *site dictionary* and each dynamic record as a `u32` site
/// index plus one taken bit: ~4.1 bytes per record. This is the shareable
/// buffer behind the execution engine's trace cache — materialize a
/// benchmark walk once, then replay the same bytes for every configuration.
///
/// Replay order, PCs, and outcomes are exactly those of the source
/// iterator; [`PackedTrace::iter`] yields bit-identical records.
///
/// # Examples
///
/// ```
/// use cira_trace::{codec::PackedTrace, BranchRecord};
///
/// let records = vec![
///     BranchRecord::new(0x4000, true),
///     BranchRecord::new(0x4004, false),
///     BranchRecord::new(0x4000, false),
/// ];
/// let packed: PackedTrace = records.iter().copied().collect();
/// assert_eq!(packed.len(), 3);
/// assert_eq!(packed.sites(), 2);
/// let back: Vec<_> = packed.iter().collect();
/// assert_eq!(back, records);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PackedTrace {
    /// Distinct PCs in first-appearance order.
    site_pcs: Vec<u64>,
    /// One site-dictionary index per dynamic record.
    site_idx: Vec<u32>,
    /// Taken outcomes, one bit per record, LSB-first within each word.
    taken: Vec<u64>,
}

impl PackedTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Packs an iterator of records; pre-sizes for `hint` records.
    pub fn with_capacity(hint: usize) -> Self {
        Self {
            site_pcs: Vec::new(),
            site_idx: Vec::with_capacity(hint),
            taken: Vec::with_capacity(hint / 64 + 1),
        }
    }

    /// Appends one record.
    ///
    /// # Panics
    ///
    /// Panics if the trace accumulates more than `u32::MAX` distinct sites
    /// (far beyond any real or synthetic workload).
    pub fn push(&mut self, record: BranchRecord) {
        // Linear site lookup would be O(sites) per record; keep an index
        // map only while building. To avoid a persistent HashMap field the
        // builder path goes through `from_iter`/`extend`, which maintain
        // the map externally; `push` falls back to a scan for small use.
        let idx = match self.site_pcs.iter().position(|&pc| pc == record.pc) {
            Some(i) => i as u32,
            None => self.intern(record.pc),
        };
        self.push_indexed(idx, record.taken);
    }

    fn intern(&mut self, pc: u64) -> u32 {
        let idx = u32::try_from(self.site_pcs.len()).expect("more than u32::MAX distinct sites");
        self.site_pcs.push(pc);
        idx
    }

    fn push_indexed(&mut self, idx: u32, taken: bool) {
        let i = self.site_idx.len();
        self.site_idx.push(idx);
        if i.is_multiple_of(64) {
            self.taken.push(0);
        }
        if taken {
            self.taken[i / 64] |= 1u64 << (i % 64);
        }
    }

    /// Number of dynamic records.
    pub fn len(&self) -> usize {
        self.site_idx.len()
    }

    /// Whether the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.site_idx.is_empty()
    }

    /// Number of distinct static branch sites.
    pub fn sites(&self) -> usize {
        self.site_pcs.len()
    }

    /// The PC of site-dictionary entry `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn site_pc(&self, idx: u32) -> u64 {
        self.site_pcs[idx as usize]
    }

    /// The record at position `i`, if in range.
    pub fn get(&self, i: usize) -> Option<BranchRecord> {
        let &idx = self.site_idx.get(i)?;
        Some(BranchRecord::new(self.site_pcs[idx as usize], self.taken_at(i)))
    }

    /// The site-dictionary index of record `i` (for dense per-site
    /// accumulation during replay).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn site_index_at(&self, i: usize) -> u32 {
        self.site_idx[i]
    }

    /// The taken bit of record `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn taken_at(&self, i: usize) -> bool {
        assert!(i < self.site_idx.len(), "record index out of range");
        self.taken[i / 64] >> (i % 64) & 1 == 1
    }

    /// The per-record site-dictionary indices, for bulk (SoA) consumers
    /// like the vectorized replay kernel.
    pub fn site_indices(&self) -> &[u32] {
        &self.site_idx
    }

    /// The site dictionary (distinct PCs in first-appearance order);
    /// `site_indices()[i]` indexes into this slice.
    pub fn site_pc_table(&self) -> &[u64] {
        &self.site_pcs
    }

    /// The raw taken bitmap: bit `i % 64` of word `i / 64` is record `i`'s
    /// outcome (LSB-first within each word). Bits at or beyond [`len`]
    /// within the last word are zero.
    ///
    /// [`len`]: PackedTrace::len
    pub fn taken_words(&self) -> &[u64] {
        &self.taken
    }

    /// Approximate heap footprint in bytes (used by cache budgeting).
    pub fn approx_bytes(&self) -> usize {
        self.site_pcs.capacity() * 8 + self.site_idx.capacity() * 4 + self.taken.capacity() * 8
    }

    /// Iterates the records in order.
    pub fn iter(&self) -> PackedTraceIter<'_> {
        PackedTraceIter { trace: self, pos: 0 }
    }

    /// Serializes the trace to the stable `CIRP` v1 byte layout
    /// (everything little-endian):
    ///
    /// ```text
    /// offset  size              field
    /// 0       4                 magic "CIRP"
    /// 4       1                 version (1)
    /// 5       3                 reserved (zero)
    /// 8       4                 n_sites:   u32
    /// 12      8                 n_records: u64
    /// 20      8 * n_sites       site PCs, first-appearance order
    /// ..      4 * n_records     site index per record
    /// ..      8 * ceil(n/64)    taken bitmap, LSB-first per word
    /// ```
    ///
    /// The taken bitmap's padding bits (beyond `n_records`) are zero.
    /// [`PackedTrace::from_bytes`] round-trips this exactly; the `cira-serve`
    /// wire protocol ships `BATCH` payloads in this layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            20 + 8 * self.site_pcs.len() + 4 * self.site_idx.len() + 8 * self.taken.len(),
        );
        out.extend_from_slice(PACKED_MAGIC);
        out.extend_from_slice(&[PACKED_VERSION, 0, 0, 0]);
        out.extend_from_slice(&(self.site_pcs.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.site_idx.len() as u64).to_le_bytes());
        for pc in &self.site_pcs {
            out.extend_from_slice(&pc.to_le_bytes());
        }
        for idx in &self.site_idx {
            out.extend_from_slice(&idx.to_le_bytes());
        }
        for word in &self.taken {
            out.extend_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// Parses the `CIRP` v1 layout written by [`PackedTrace::to_bytes`].
    ///
    /// The whole buffer must be consumed (no trailing bytes), the declared
    /// lengths must match the buffer size exactly (checked *before* any
    /// allocation, so hostile headers cannot trigger huge allocations),
    /// every site index must be in range, and bitmap padding bits must be
    /// zero — a successful parse is always bit-identical to re-serializing.
    ///
    /// # Errors
    ///
    /// Returns [`PackedBytesError`] describing the first malformed field.
    pub fn from_bytes(bytes: &[u8]) -> Result<PackedTrace, PackedBytesError> {
        if bytes.len() < 20 {
            return Err(PackedBytesError::Truncated {
                need: 20,
                have: bytes.len(),
            });
        }
        if &bytes[0..4] != PACKED_MAGIC {
            let mut m = [0u8; 4];
            m.copy_from_slice(&bytes[0..4]);
            return Err(PackedBytesError::BadMagic(m));
        }
        if bytes[4] != PACKED_VERSION {
            return Err(PackedBytesError::UnsupportedVersion(bytes[4]));
        }
        let n_sites = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let n_records = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
        let n_records = usize::try_from(n_records)
            .map_err(|_| PackedBytesError::LengthOverflow(n_records))?;
        let n_words = n_records.div_ceil(64);
        let expect = 20usize
            .checked_add(n_sites.checked_mul(8).ok_or(PackedBytesError::LengthOverflow(
                n_sites as u64,
            ))?)
            .and_then(|v| v.checked_add(n_records.checked_mul(4)?))
            .and_then(|v| v.checked_add(n_words.checked_mul(8)?))
            .ok_or(PackedBytesError::LengthOverflow(n_records as u64))?;
        if bytes.len() < expect {
            return Err(PackedBytesError::Truncated {
                need: expect,
                have: bytes.len(),
            });
        }
        if bytes.len() > expect {
            return Err(PackedBytesError::TrailingBytes(bytes.len() - expect));
        }
        let mut at = 20;
        let mut site_pcs = Vec::with_capacity(n_sites);
        for _ in 0..n_sites {
            site_pcs.push(u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()));
            at += 8;
        }
        let mut site_idx = Vec::with_capacity(n_records);
        for _ in 0..n_records {
            let idx = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
            if idx as usize >= n_sites {
                return Err(PackedBytesError::SiteIndexOutOfRange {
                    index: idx,
                    sites: n_sites as u32,
                });
            }
            site_idx.push(idx);
            at += 4;
        }
        let mut taken = Vec::with_capacity(n_words);
        for _ in 0..n_words {
            taken.push(u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()));
            at += 8;
        }
        if let Some(last) = taken.last() {
            let used = n_records - (n_words - 1) * 64;
            if used < 64 && last >> used != 0 {
                return Err(PackedBytesError::NonZeroPadding);
            }
        }
        Ok(PackedTrace {
            site_pcs,
            site_idx,
            taken,
        })
    }
}

const PACKED_MAGIC: &[u8; 4] = b"CIRP";
const PACKED_VERSION: u8 = 1;

/// Errors produced when parsing [`PackedTrace::from_bytes`] input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackedBytesError {
    /// Fewer bytes than the header + declared payload require.
    Truncated {
        /// Bytes required.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// The buffer does not start with `CIRP`.
    BadMagic([u8; 4]),
    /// Unknown layout version.
    UnsupportedVersion(u8),
    /// Declared lengths overflow the address space.
    LengthOverflow(u64),
    /// Extra bytes after the declared payload.
    TrailingBytes(usize),
    /// A record references a site outside the dictionary.
    SiteIndexOutOfRange {
        /// The offending index.
        index: u32,
        /// Dictionary size.
        sites: u32,
    },
    /// Taken-bitmap bits beyond `n_records` are set.
    NonZeroPadding,
}

impl fmt::Display for PackedBytesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackedBytesError::Truncated { need, have } => {
                write!(f, "truncated packed trace: need {need} bytes, have {have}")
            }
            PackedBytesError::BadMagic(m) => write!(f, "bad magic {m:?}, expected \"CIRP\""),
            PackedBytesError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            PackedBytesError::LengthOverflow(n) => write!(f, "declared length {n} overflows"),
            PackedBytesError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
            PackedBytesError::SiteIndexOutOfRange { index, sites } => {
                write!(f, "site index {index} out of range ({sites} sites)")
            }
            PackedBytesError::NonZeroPadding => write!(f, "non-zero taken-bitmap padding"),
        }
    }
}

impl std::error::Error for PackedBytesError {}

impl FromIterator<BranchRecord> for PackedTrace {
    fn from_iter<I: IntoIterator<Item = BranchRecord>>(iter: I) -> Self {
        let it = iter.into_iter();
        let mut out = PackedTrace::with_capacity(it.size_hint().0);
        // Interning map kept local to the build so the packed result stays
        // three flat arrays.
        let mut map: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        for r in it {
            let idx = *map.entry(r.pc).or_insert_with(|| {
                let idx = u32::try_from(out.site_pcs.len())
                    .expect("more than u32::MAX distinct sites");
                out.site_pcs.push(r.pc);
                idx
            });
            out.push_indexed(idx, r.taken);
        }
        out
    }
}

impl<'a> IntoIterator for &'a PackedTrace {
    type Item = BranchRecord;
    type IntoIter = PackedTraceIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over a [`PackedTrace`].
#[derive(Debug, Clone)]
pub struct PackedTraceIter<'a> {
    trace: &'a PackedTrace,
    pos: usize,
}

impl Iterator for PackedTraceIter<'_> {
    type Item = BranchRecord;

    fn next(&mut self) -> Option<BranchRecord> {
        let r = self.trace.get(self.pos)?;
        self.pos += 1;
        Some(r)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.trace.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for PackedTraceIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;

    fn roundtrip(records: &[BranchRecord]) {
        let mut buf = Vec::new();
        let n = write_trace(&mut buf, records.iter().copied()).unwrap();
        assert_eq!(n, records.len() as u64);
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn zigzag_roundtrip_edges() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 42, -42] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn empty_trace_roundtrips() {
        roundtrip(&[]);
    }

    #[test]
    fn single_record_roundtrips() {
        roundtrip(&[BranchRecord::new(0xdead_beef, true)]);
    }

    #[test]
    fn local_deltas_are_compact() {
        let records: Vec<_> = (0..1000u64)
            .map(|i| BranchRecord::new(0x40_0000 + 4 * (i % 16), i % 3 == 0))
            .collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, records.iter().copied()).unwrap();
        // header + ~1-2 bytes per record
        assert!(buf.len() < 8 + 2 * records.len(), "size {}", buf.len());
        assert_eq!(read_trace(&buf[..]).unwrap(), records);
    }

    #[test]
    fn random_pcs_roundtrip() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let records: Vec<_> = (0..5000)
            .map(|_| BranchRecord::new(rng.next_u64(), rng.bernoulli(0.5)))
            .collect();
        roundtrip(&records);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOPE\x01\x00\x00\x00".to_vec();
        match read_trace(&buf[..]) {
            Err(DecodeTraceError::BadMagic(m)) => assert_eq!(&m, b"NOPE"),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn bad_version_rejected() {
        let buf = b"CIRT\x07\x00\x00\x00".to_vec();
        match read_trace(&buf[..]) {
            Err(DecodeTraceError::UnsupportedVersion(7)) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn truncated_header_rejected() {
        let buf = b"CIRT".to_vec();
        assert!(matches!(read_trace(&buf[..]), Err(DecodeTraceError::Io(_))));
    }

    #[test]
    fn truncated_record_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, [BranchRecord::new(u64::MAX / 3, true)]).unwrap();
        buf.pop(); // chop mid-varint
        assert!(matches!(
            read_trace(&buf[..]),
            Err(DecodeTraceError::TruncatedRecord)
        ));
    }

    #[test]
    fn varint_overflow_rejected() {
        let mut buf = b"CIRT\x01\x00\x00\x00".to_vec();
        buf.extend_from_slice(&[0xff; 11]);
        assert!(matches!(
            read_trace(&buf[..]),
            Err(DecodeTraceError::VarintOverflow)
        ));
    }

    #[test]
    fn streaming_reader_yields_incrementally() {
        let records = [
            BranchRecord::new(16, true),
            BranchRecord::new(20, false),
            BranchRecord::new(16, true),
        ];
        let mut buf = Vec::new();
        write_trace(&mut buf, records.iter().copied()).unwrap();
        let mut reader = TraceReader::new(&buf[..]).unwrap();
        assert_eq!(reader.next().unwrap().unwrap(), records[0]);
        assert_eq!(reader.next().unwrap().unwrap(), records[1]);
        assert_eq!(reader.next().unwrap().unwrap(), records[2]);
        assert!(reader.next().is_none());
    }

    #[test]
    fn packed_trace_roundtrips_suite_prefix() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        let records: Vec<_> = (0..4096)
            .map(|_| BranchRecord::new(0x40_0000 + 4 * rng.next_below(300), rng.bernoulli(0.6)))
            .collect();
        let packed: PackedTrace = records.iter().copied().collect();
        assert_eq!(packed.len(), records.len());
        assert!(packed.sites() <= 300);
        let back: Vec<_> = packed.iter().collect();
        assert_eq!(back, records);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(packed.get(i), Some(*r));
            assert_eq!(packed.taken_at(i), r.taken);
            assert_eq!(packed.site_pc(packed.site_index_at(i)), r.pc);
        }
        assert_eq!(packed.get(records.len()), None);
    }

    #[test]
    fn packed_trace_is_compact() {
        let records: Vec<_> = (0..10_000u64)
            .map(|i| BranchRecord::new(0x1000 + 8 * (i % 64), i % 3 == 0))
            .collect();
        let packed: PackedTrace = records.iter().copied().collect();
        // ~4.1 bytes per record vs 16 for Vec<BranchRecord>.
        assert!(
            packed.approx_bytes() < 6 * records.len(),
            "packed {} bytes for {} records",
            packed.approx_bytes(),
            records.len()
        );
    }

    #[test]
    fn packed_trace_empty_and_push() {
        let mut p = PackedTrace::new();
        assert!(p.is_empty());
        assert_eq!(p.iter().next(), None);
        p.push(BranchRecord::new(8, true));
        p.push(BranchRecord::new(16, false));
        p.push(BranchRecord::new(8, false));
        assert_eq!(p.len(), 3);
        assert_eq!(p.sites(), 2);
        assert_eq!(
            p.iter().collect::<Vec<_>>(),
            vec![
                BranchRecord::new(8, true),
                BranchRecord::new(16, false),
                BranchRecord::new(8, false)
            ]
        );
    }

    #[test]
    fn packed_trace_iter_size_hint() {
        let p: PackedTrace = (0..100u64).map(|i| BranchRecord::new(i, true)).collect();
        let mut it = p.iter();
        assert_eq!(it.len(), 100);
        it.next();
        assert_eq!(it.size_hint(), (99, Some(99)));
    }

    /// Seeded random trace with `sites` distinct PCs and `len` records.
    fn random_trace(seed: u64, sites: u64, len: usize) -> Vec<BranchRecord> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        (0..len)
            .map(|_| {
                BranchRecord::new(
                    rng.next_u64() >> 40 | rng.next_below(sites.max(1)) << 24,
                    rng.bernoulli(0.37),
                )
            })
            .collect()
    }

    #[test]
    fn packed_bytes_roundtrip_fixed_layout() {
        let records = [
            BranchRecord::new(0x4000, true),
            BranchRecord::new(0x4004, false),
            BranchRecord::new(0x4000, false),
        ];
        let packed: PackedTrace = records.iter().copied().collect();
        let bytes = packed.to_bytes();
        // Header is pinned: magic, version, reserved, counts in LE.
        assert_eq!(&bytes[0..4], b"CIRP");
        assert_eq!(&bytes[4..8], &[1, 0, 0, 0]);
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 2);
        assert_eq!(u64::from_le_bytes(bytes[12..20].try_into().unwrap()), 3);
        assert_eq!(u64::from_le_bytes(bytes[20..28].try_into().unwrap()), 0x4000);
        assert_eq!(bytes.len(), 20 + 2 * 8 + 3 * 4 + 8);
        let back = PackedTrace::from_bytes(&bytes).unwrap();
        assert_eq!(back, packed);
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn packed_bytes_roundtrip_random_traces() {
        // Fuzz-ish sweep: many seeded shapes, including empty, exact word
        // multiples (64, 128) and off-by-one bitmap boundaries.
        for (seed, sites, len) in [
            (1u64, 1u64, 0usize),
            (2, 1, 1),
            (3, 7, 63),
            (4, 7, 64),
            (5, 7, 65),
            (6, 300, 128),
            (7, 1000, 4096),
            (8, 3, 10_001),
        ] {
            let records = random_trace(seed, sites, len);
            let packed: PackedTrace = records.iter().copied().collect();
            let bytes = packed.to_bytes();
            let back = PackedTrace::from_bytes(&bytes).unwrap();
            assert_eq!(back, packed, "seed {seed}");
            assert_eq!(back.iter().collect::<Vec<_>>(), records, "seed {seed}");
            assert_eq!(back.to_bytes(), bytes, "seed {seed}");
        }
    }

    #[test]
    fn packed_bytes_truncations_rejected_everywhere() {
        // Chopping the buffer at every length must error, never panic.
        let packed: PackedTrace = random_trace(11, 9, 200).into_iter().collect();
        let bytes = packed.to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                PackedTrace::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} parsed"
            );
        }
    }

    #[test]
    fn packed_bytes_corruptions_rejected() {
        let packed: PackedTrace = random_trace(12, 4, 70).into_iter().collect();
        let good = packed.to_bytes();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            PackedTrace::from_bytes(&bad_magic),
            Err(PackedBytesError::BadMagic(_))
        ));

        let mut bad_version = good.clone();
        bad_version[4] = 9;
        assert!(matches!(
            PackedTrace::from_bytes(&bad_version),
            Err(PackedBytesError::UnsupportedVersion(9))
        ));

        let mut trailing = good.clone();
        trailing.push(0);
        assert!(matches!(
            PackedTrace::from_bytes(&trailing),
            Err(PackedBytesError::TrailingBytes(1))
        ));

        // Site index beyond the dictionary (first record's index → huge).
        let mut bad_site = good.clone();
        let idx_off = 20 + 8 * packed.sites();
        bad_site[idx_off..idx_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            PackedTrace::from_bytes(&bad_site),
            Err(PackedBytesError::SiteIndexOutOfRange { .. })
        ));

        // Padding bits set in the last bitmap word (70 records → 58 pad bits).
        let mut bad_pad = good.clone();
        let last = bad_pad.len() - 1;
        bad_pad[last] |= 0x80;
        assert!(matches!(
            PackedTrace::from_bytes(&bad_pad),
            Err(PackedBytesError::NonZeroPadding)
        ));

        // A hostile header declaring astronomically many records must be
        // rejected by the size check before any allocation happens.
        let mut hostile = good[..20].to_vec();
        hostile[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(PackedTrace::from_bytes(&hostile).is_err());
    }

    #[test]
    fn error_display_messages() {
        assert!(DecodeTraceError::VarintOverflow
            .to_string()
            .contains("varint"));
        assert!(DecodeTraceError::BadMagic(*b"ABCD")
            .to_string()
            .contains("CIRT"));
    }
}
