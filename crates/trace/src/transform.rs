//! Trace transformations: rebasing, concatenation, interleaving, and
//! sampling.
//!
//! These are the utility operations a trace-driven methodology needs
//! around the raw record streams: build multiprogrammed (SMT-style)
//! workloads by interleaving per-thread traces, relocate PC ranges so
//! concatenated programs do not alias, and thin traces for quick looks.

use crate::record::BranchRecord;

/// Shifts every PC by a signed offset (wrapping).
///
/// # Examples
///
/// ```
/// use cira_trace::{transform::offset_pcs, BranchRecord};
///
/// let t = vec![BranchRecord::new(0x100, true)];
/// let shifted: Vec<_> = offset_pcs(t, 0x1000).collect();
/// assert_eq!(shifted[0].pc, 0x1100);
/// ```
pub fn offset_pcs<I>(trace: I, offset: i64) -> impl Iterator<Item = BranchRecord>
where
    I: IntoIterator<Item = BranchRecord>,
{
    trace
        .into_iter()
        .map(move |r| BranchRecord::new(r.pc.wrapping_add(offset as u64), r.taken))
}

/// Concatenates traces, relocating each input to its own `region_size`-
/// aligned PC region so static branches never collide across inputs.
///
/// # Panics
///
/// Panics if `region_size` is zero.
pub fn concat_rebased(traces: Vec<Vec<BranchRecord>>, region_size: u64) -> Vec<BranchRecord> {
    assert!(region_size > 0, "region_size must be positive");
    let mut out = Vec::with_capacity(traces.iter().map(Vec::len).sum());
    for (i, t) in traces.into_iter().enumerate() {
        let base = region_size * i as u64;
        out.extend(
            t.into_iter()
                .map(|r| BranchRecord::new(base + (r.pc % region_size), r.taken)),
        );
    }
    out
}

/// Round-robin interleaves several traces in fixed quanta — a
/// multiprogrammed (context-switching) workload from per-program traces.
///
/// Each input contributes `quantum` consecutive records per turn until all
/// are exhausted; shorter inputs simply drop out.
///
/// # Panics
///
/// Panics if `quantum` is zero.
///
/// # Examples
///
/// ```
/// use cira_trace::{transform::interleave, BranchRecord};
///
/// let a = vec![BranchRecord::new(0, true); 4];
/// let b = vec![BranchRecord::new(4, false); 2];
/// let mixed = interleave(vec![a, b], 2);
/// assert_eq!(mixed.len(), 6);
/// assert_eq!(mixed[2].pc, 4); // b's quantum follows a's
/// ```
pub fn interleave(traces: Vec<Vec<BranchRecord>>, quantum: usize) -> Vec<BranchRecord> {
    assert!(quantum > 0, "quantum must be positive");
    let total = traces.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut cursors: Vec<(std::vec::IntoIter<BranchRecord>, bool)> =
        traces.into_iter().map(|t| (t.into_iter(), true)).collect();
    while cursors.iter().any(|(_, alive)| *alive) {
        for (iter, alive) in cursors.iter_mut() {
            if !*alive {
                continue;
            }
            let mut took = 0;
            for r in iter.by_ref().take(quantum) {
                out.push(r);
                took += 1;
            }
            if took < quantum {
                *alive = false;
            }
        }
    }
    out
}

/// Keeps every `n`-th record (systematic sampling) — useful for quick
/// statistical looks at long traces. Note that sampled traces are *not*
/// valid predictor inputs (history continuity is broken); use them for
/// bias/footprint statistics only.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn sample_every<I>(trace: I, n: usize) -> impl Iterator<Item = BranchRecord>
where
    I: IntoIterator<Item = BranchRecord>,
{
    assert!(n > 0, "n must be positive");
    trace.into_iter().step_by(n)
}

/// Splits a trace at PC `boundary`: records below it go left, the rest
/// right. Used with [`crate::suite::Benchmark::kernel_start_pc`] to
/// separate user and kernel streams.
pub fn split_at_pc(
    trace: impl IntoIterator<Item = BranchRecord>,
    boundary: u64,
) -> (Vec<BranchRecord>, Vec<BranchRecord>) {
    trace.into_iter().partition(|r| r.pc < boundary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pc: u64) -> BranchRecord {
        BranchRecord::new(pc, pc.is_multiple_of(2))
    }

    #[test]
    fn offset_wraps() {
        let out: Vec<_> = offset_pcs(vec![rec(4), rec(u64::MAX)], 1).collect();
        assert_eq!(out[0].pc, 5);
        assert_eq!(out[1].pc, 0);
        let back: Vec<_> = offset_pcs(out, -1).collect();
        assert_eq!(back[0].pc, 4);
    }

    #[test]
    fn concat_rebased_separates_regions() {
        let a = vec![rec(0x10), rec(0x20)];
        let b = vec![rec(0x10), rec(0x30)];
        let out = concat_rebased(vec![a, b], 0x1000);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].pc, 0x10);
        assert_eq!(out[2].pc, 0x1010);
        // No PC collisions across inputs despite identical originals.
        assert_ne!(out[0].pc, out[2].pc);
    }

    #[test]
    fn concat_rebased_wraps_large_pcs_into_region() {
        let a = vec![rec(0x12345)];
        let out = concat_rebased(vec![a], 0x100);
        assert!(out[0].pc < 0x100);
    }

    #[test]
    fn interleave_round_robin_order() {
        let a = vec![rec(0), rec(4), rec(8), rec(12)];
        let b = vec![rec(100), rec(104)];
        let out = interleave(vec![a, b], 2);
        let pcs: Vec<u64> = out.iter().map(|r| r.pc).collect();
        assert_eq!(pcs, vec![0, 4, 100, 104, 8, 12]);
    }

    #[test]
    fn interleave_preserves_every_record() {
        let a: Vec<_> = (0..13).map(|i| rec(i * 4)).collect();
        let b: Vec<_> = (0..7).map(|i| rec(1000 + i * 4)).collect();
        let c: Vec<_> = (0..1).map(|i| rec(2000 + i * 4)).collect();
        let out = interleave(vec![a.clone(), b.clone(), c.clone()], 3);
        assert_eq!(out.len(), a.len() + b.len() + c.len());
        // Per-input subsequences keep their order.
        let a_out: Vec<_> = out.iter().filter(|r| r.pc < 1000).copied().collect();
        assert_eq!(a_out, a);
    }

    #[test]
    fn interleave_empty_inputs() {
        assert!(interleave(vec![], 4).is_empty());
        assert!(interleave(vec![vec![], vec![]], 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "quantum")]
    fn interleave_zero_quantum_panics() {
        interleave(vec![vec![rec(0)]], 0);
    }

    #[test]
    fn sampling_takes_every_nth() {
        let t: Vec<_> = (0..10).map(|i| rec(i * 4)).collect();
        let s: Vec<_> = sample_every(t, 3).collect();
        let pcs: Vec<u64> = s.iter().map(|r| r.pc).collect();
        assert_eq!(pcs, vec![0, 12, 24, 36]);
    }

    #[test]
    fn split_at_pc_partitions() {
        let t = vec![rec(0x10), rec(0x1000), rec(0x20)];
        let (user, kernel) = split_at_pc(t, 0x100);
        assert_eq!(user.len(), 2);
        assert_eq!(kernel.len(), 1);
        assert!(user.iter().all(|r| r.pc < 0x100));
    }
}
