//! Branch trace records and the [`TraceSource`] abstraction.
//!
//! A *branch trace* is the only input the systems in this workspace consume:
//! a sequence of ([`BranchRecord`]) pairs of conditional-branch program
//! counter and resolved outcome. Confidence mechanisms (and the predictors
//! beneath them) never observe opcodes, operands, or data addresses, so this
//! record type is deliberately minimal.

use std::fmt;

/// One dynamic conditional branch: its instruction address and outcome.
///
/// # Examples
///
/// ```
/// use cira_trace::BranchRecord;
///
/// let r = BranchRecord::new(0x4000, true);
/// assert!(r.taken);
/// assert_eq!(r.pc, 0x4000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BranchRecord {
    /// Instruction address of the conditional branch.
    pub pc: u64,
    /// `true` if the branch was taken.
    pub taken: bool,
}

impl BranchRecord {
    /// Creates a record from a program counter and an outcome.
    pub fn new(pc: u64, taken: bool) -> Self {
        Self { pc, taken }
    }
}

impl fmt::Display for BranchRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}:{}", self.pc, if self.taken { 'T' } else { 'N' })
    }
}

/// A source of branch records that can be replayed from the start.
///
/// All generators in this crate are cheap to re-create from their seed, so a
/// `TraceSource` is an `Iterator` plus the ability to rewind; multi-pass
/// experiments (e.g. profile-then-measure) use [`TraceSource::reset`] rather
/// than buffering gigabytes of records.
pub trait TraceSource: Iterator<Item = BranchRecord> {
    /// Rewinds the source to the beginning of its stream.
    ///
    /// After `reset`, iteration yields exactly the same records again.
    fn reset(&mut self);
}

/// Replays a fixed in-memory vector of records.
///
/// Useful in tests and for traces loaded from files via
/// [`crate::codec::read_trace`].
///
/// # Examples
///
/// ```
/// use cira_trace::{BranchRecord, TraceSource, VecTrace};
///
/// let mut t = VecTrace::new(vec![BranchRecord::new(8, true)]);
/// assert_eq!(t.next(), Some(BranchRecord::new(8, true)));
/// assert_eq!(t.next(), None);
/// t.reset();
/// assert_eq!(t.next(), Some(BranchRecord::new(8, true)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VecTrace {
    records: Vec<BranchRecord>,
    pos: usize,
}

impl VecTrace {
    /// Creates a replayable trace over `records`.
    pub fn new(records: Vec<BranchRecord>) -> Self {
        Self { records, pos: 0 }
    }

    /// Number of records in the trace.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Borrows the underlying records.
    pub fn records(&self) -> &[BranchRecord] {
        &self.records
    }

    /// Consumes the trace, returning the underlying records.
    pub fn into_records(self) -> Vec<BranchRecord> {
        self.records
    }
}

impl Iterator for VecTrace {
    type Item = BranchRecord;

    fn next(&mut self) -> Option<BranchRecord> {
        let r = self.records.get(self.pos).copied();
        if r.is_some() {
            self.pos += 1;
        }
        r
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.records.len() - self.pos;
        (rem, Some(rem))
    }
}

impl TraceSource for VecTrace {
    fn reset(&mut self) {
        self.pos = 0;
    }
}

impl FromIterator<BranchRecord> for VecTrace {
    fn from_iter<I: IntoIterator<Item = BranchRecord>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

impl Extend<BranchRecord> for VecTrace {
    fn extend<I: IntoIterator<Item = BranchRecord>>(&mut self, iter: I) {
        self.records.extend(iter);
    }
}

/// Summary statistics of a branch trace.
///
/// Computed in one pass by [`TraceStats::from_iter`] (via `collect()`); used
/// in examples, calibration output, and tests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    dynamic_branches: u64,
    taken: u64,
    static_pcs: std::collections::BTreeSet<u64>,
}

impl TraceStats {
    /// Total number of dynamic branches observed.
    pub fn dynamic_branches(&self) -> u64 {
        self.dynamic_branches
    }

    /// Number of taken outcomes.
    pub fn taken(&self) -> u64 {
        self.taken
    }

    /// Fraction of branches that were taken (0 if the trace is empty).
    pub fn taken_rate(&self) -> f64 {
        if self.dynamic_branches == 0 {
            0.0
        } else {
            self.taken as f64 / self.dynamic_branches as f64
        }
    }

    /// Number of distinct static branch sites (distinct PCs).
    pub fn static_branches(&self) -> usize {
        self.static_pcs.len()
    }

    /// Folds one record into the statistics.
    pub fn observe(&mut self, record: BranchRecord) {
        self.dynamic_branches += 1;
        if record.taken {
            self.taken += 1;
        }
        self.static_pcs.insert(record.pc);
    }
}

impl FromIterator<BranchRecord> for TraceStats {
    fn from_iter<I: IntoIterator<Item = BranchRecord>>(iter: I) -> Self {
        let mut s = TraceStats::default();
        for r in iter {
            s.observe(r);
        }
        s
    }
}

impl Extend<BranchRecord> for TraceStats {
    fn extend<I: IntoIterator<Item = BranchRecord>>(&mut self, iter: I) {
        for r in iter {
            self.observe(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<BranchRecord> {
        vec![
            BranchRecord::new(0x10, true),
            BranchRecord::new(0x14, false),
            BranchRecord::new(0x10, true),
        ]
    }

    #[test]
    fn display_format() {
        assert_eq!(BranchRecord::new(0x1f, true).to_string(), "0x1f:T");
        assert_eq!(BranchRecord::new(0x20, false).to_string(), "0x20:N");
    }

    #[test]
    fn vec_trace_iterates_and_resets() {
        let mut t = VecTrace::new(sample());
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        let first: Vec<_> = t.by_ref().collect();
        assert_eq!(first, sample());
        assert_eq!(t.next(), None);
        t.reset();
        let second: Vec<_> = t.collect();
        assert_eq!(second, sample());
    }

    #[test]
    fn vec_trace_size_hint_tracks_position() {
        let mut t = VecTrace::new(sample());
        assert_eq!(t.size_hint(), (3, Some(3)));
        t.next();
        assert_eq!(t.size_hint(), (2, Some(2)));
    }

    #[test]
    fn vec_trace_from_iterator_and_extend() {
        let mut t: VecTrace = sample().into_iter().collect();
        t.extend(vec![BranchRecord::new(0x18, true)]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.into_records().len(), 4);
    }

    #[test]
    fn empty_vec_trace() {
        let mut t = VecTrace::default();
        assert!(t.is_empty());
        assert_eq!(t.next(), None);
        t.reset();
        assert_eq!(t.next(), None);
    }

    #[test]
    fn stats_counts() {
        let s: TraceStats = sample().into_iter().collect();
        assert_eq!(s.dynamic_branches(), 3);
        assert_eq!(s.taken(), 2);
        assert_eq!(s.static_branches(), 2);
        assert!((s.taken_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn stats_empty_trace_has_zero_rate() {
        let s = TraceStats::default();
        assert_eq!(s.taken_rate(), 0.0);
        assert_eq!(s.static_branches(), 0);
    }
}
