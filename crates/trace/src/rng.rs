//! Deterministic pseudo-random number generation.
//!
//! Trace generation must be bit-stable across library versions and platforms
//! so that experiments are exactly reproducible; we therefore implement our
//! own small, well-known generators instead of depending on an external crate
//! whose stream might change between releases.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — a tiny 64-bit generator used for seeding and hashing.
//! * [`Xoshiro256StarStar`] — the main workhorse generator, seeded from a
//!   single `u64` via `SplitMix64` exactly as recommended by its authors.
//!
//! # Examples
//!
//! ```
//! use cira_trace::rng::Xoshiro256StarStar;
//!
//! let mut rng = Xoshiro256StarStar::seed_from_u64(42);
//! let a = rng.next_u64();
//! let mut rng2 = Xoshiro256StarStar::seed_from_u64(42);
//! assert_eq!(a, rng2.next_u64()); // fully deterministic
//! ```

/// SplitMix64 generator (Steele, Lea & Flood; public domain reference
/// implementation by Sebastiano Vigna).
///
/// Primarily used to expand a single `u64` seed into the larger state of
/// [`Xoshiro256StarStar`], and as a cheap stateless hash in index mixing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given initial state.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output and advances the state.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// One-shot stateless mix of a `u64`; useful as a hash function.
    pub fn mix(x: u64) -> u64 {
        SplitMix64::new(x).next_u64()
    }
}

/// xoshiro256** 1.0 generator (Blackman & Vigna, public domain).
///
/// Fast, high-quality, 256 bits of state, period `2^256 - 1`. All synthetic
/// workloads in this crate draw from this generator.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator from four raw state words.
    ///
    /// # Panics
    ///
    /// Panics if all four words are zero (the all-zero state is the one
    /// forbidden state of the xoshiro family).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro256** state must be nonzero"
        );
        Self { s }
    }

    /// Seeds the full 256-bit state from a single `u64` using SplitMix64,
    /// as recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // SplitMix64 output of any seed is never all-zero across 4 draws.
        Self { s }
    }

    /// Returns the next 64-bit output and advances the state.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    ///
    /// Uses the conventional 53-high-bits construction.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Values of `p <= 0.0` always return `false`; values `>= 1.0` always
    /// return `true`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Returns a uniformly distributed integer in `[0, bound)` using
    /// Lemire's multiply-shift rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Lemire 2018: unbiased bounded generation without division in the
        // common case.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniformly distributed integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive requires lo <= hi");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(span + 1)
    }

    /// Draws from a geometric distribution: the number of Bernoulli(`p`)
    /// failures before the first success, capped at `cap`.
    ///
    /// Used for e.g. variable loop trip counts. `p` is clamped to a minimum
    /// of `1e-9` to guarantee termination.
    pub fn geometric(&mut self, p: f64, cap: u64) -> u64 {
        let p = p.max(1e-9);
        let mut n = 0;
        while n < cap && !self.bernoulli(p) {
            n += 1;
        }
        n
    }

    /// Picks an index in `[0, weights.len())` with probability proportional
    /// to `weights[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero (or a non-finite value).
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        assert!(
            !weights.is_empty(),
            "pick_weighted requires a nonempty slice"
        );
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "pick_weighted requires positive finite total weight"
        );
        let mut x = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Forks a statistically independent child generator.
    ///
    /// The child's seed is derived from the parent's stream, so forking at
    /// the same point in a run always yields the same child.
    pub fn fork(&mut self) -> Self {
        Self::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // splitmix64.c reference implementation.
        let mut sm = SplitMix64::new(1234567);
        let expected = [
            6457827717110365317u64,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for &e in &expected {
            assert_eq!(sm.next_u64(), e);
        }
    }

    #[test]
    fn xoshiro_reference_vector() {
        // Reference: state seeded with s = [1, 2, 3, 4]; outputs from the
        // public-domain xoshiro256starstar.c reference implementation.
        let mut x = Xoshiro256StarStar::from_state([1, 2, 3, 4]);
        let expected = [
            11520u64,
            0,
            1509978240,
            1215971899390074240,
            1216172134540287360,
            607988272756665600,
            16172922978634559625,
            8476171486693032832,
            10595114339597558777,
            2904607092377533576,
        ];
        for &e in &expected {
            assert_eq!(x.next_u64(), e);
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = Xoshiro256StarStar::seed_from_u64(99);
        let mut b = Xoshiro256StarStar::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256StarStar::seed_from_u64(1);
        let mut b = Xoshiro256StarStar::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn all_zero_state_panics() {
        let _ = Xoshiro256StarStar::from_state([0, 0, 0, 0]);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut x = Xoshiro256StarStar::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = x.next_f64();
            assert!((0.0..1.0).contains(&v), "{v} out of range");
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut x = Xoshiro256StarStar::seed_from_u64(7);
        for _ in 0..100 {
            assert!(!x.bernoulli(0.0));
            assert!(x.bernoulli(1.0));
            assert!(!x.bernoulli(-0.5));
            assert!(x.bernoulli(1.5));
        }
    }

    #[test]
    fn bernoulli_frequency_close_to_p() {
        let mut x = Xoshiro256StarStar::seed_from_u64(5);
        let n = 200_000;
        let hits = (0..n).filter(|_| x.bernoulli(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn next_below_bounds_and_uniformity() {
        let mut x = Xoshiro256StarStar::seed_from_u64(11);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            let v = x.next_below(7) as usize;
            counts[v] += 1;
        }
        for &c in &counts {
            // expected 10_000 each; allow wide tolerance
            assert!((7_000..13_000).contains(&c), "count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn next_below_zero_panics() {
        Xoshiro256StarStar::seed_from_u64(1).next_below(0);
    }

    #[test]
    fn range_inclusive_covers_endpoints() {
        let mut x = Xoshiro256StarStar::seed_from_u64(3);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            match x.range_inclusive(5, 8) {
                5 => saw_lo = true,
                8 => saw_hi = true,
                6 | 7 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn range_inclusive_degenerate() {
        let mut x = Xoshiro256StarStar::seed_from_u64(3);
        assert_eq!(x.range_inclusive(9, 9), 9);
    }

    #[test]
    fn geometric_respects_cap() {
        let mut x = Xoshiro256StarStar::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(x.geometric(0.001, 10) <= 10);
        }
    }

    #[test]
    fn geometric_mean_close_to_theory() {
        // mean of geometric (failures before success) is (1-p)/p = 4 for p=0.2
        let mut x = Xoshiro256StarStar::seed_from_u64(17);
        let n = 100_000;
        let total: u64 = (0..n).map(|_| x.geometric(0.2, 1_000_000)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn pick_weighted_prefers_heavy_items() {
        let mut x = Xoshiro256StarStar::seed_from_u64(23);
        let w = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..50_000 {
            counts[x.pick_weighted(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 7);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn pick_weighted_empty_panics() {
        Xoshiro256StarStar::seed_from_u64(1).pick_weighted(&[]);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut x = Xoshiro256StarStar::seed_from_u64(29);
        let mut v: Vec<u32> = (0..100).collect();
        x.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle should change order with high probability"
        );
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut a = Xoshiro256StarStar::seed_from_u64(31);
        let mut b = Xoshiro256StarStar::seed_from_u64(31);
        let mut ca = a.fork();
        let mut cb = b.fork();
        assert_eq!(ca.next_u64(), cb.next_u64());
        // Parent stream continues and differs from child stream.
        assert_ne!(a.next_u64(), ca.next_u64());
    }
}
