//! The IBS-like synthetic benchmark suite.
//!
//! The paper drives all experiments with the Mach version of the IBS
//! benchmark suite (Uhlig et al., ISCA 1995) — OS-intensive traces that were
//! never publicly archived. This module substitutes a *parameterized
//! synthetic suite*: ten workload profiles whose branch populations are
//! tuned so that the observables the paper's results depend on (per-
//! benchmark gshare misprediction rates, their spread, and the burstiness of
//! mispredictions) match the published numbers. See `DESIGN.md` §3 for the
//! substitution argument.
//!
//! # Examples
//!
//! ```
//! use cira_trace::suite::ibs_like_suite;
//!
//! let suite = ibs_like_suite();
//! assert_eq!(suite.len(), 10);
//! let jpeg = suite.iter().find(|b| b.name() == "jpeg").unwrap();
//! let records: Vec<_> = jpeg.walker().take(1000).collect();
//! assert_eq!(records.len(), 1000);
//! ```

use crate::model::{Behavior, TripCount};
use crate::program::{Program, ProgramBuilder, Slot, Walker};
use crate::rng::Xoshiro256StarStar;

/// Relative weights of the behaviour categories in a workload's static
/// branch population.
#[derive(Debug, Clone, PartialEq)]
pub struct MixWeights {
    /// Loop-closing branches.
    pub loops: f64,
    /// Strongly biased branches (error checks, guards): miss prob 0.2–2%.
    pub strong_bias: f64,
    /// Weakly biased branches: miss prob drawn from `weak_bias_miss`.
    pub weak_bias: f64,
    /// History-correlated branches (learnable, low noise).
    pub correlated: f64,
    /// Branches correlated at long range (offsets 13–16): learnable with
    /// the 16-bit history of the large predictor but beyond the 12-bit
    /// history of the small one — the history-length effect of §5.3.
    pub long_correlated: f64,
    /// Short periodic patterns.
    pub pattern: f64,
    /// Near-50/50 data-dependent branches.
    pub chaotic: f64,
}

impl MixWeights {
    fn as_array(&self) -> [f64; 7] {
        [
            self.loops,
            self.strong_bias,
            self.weak_bias,
            self.correlated,
            self.pattern,
            self.chaotic,
            self.long_correlated,
        ]
    }
}

/// Full description of one synthetic workload; `build()` expands it into a
/// concrete [`Program`].
///
/// Construction is deterministic in `construction_seed`; the walker seed is
/// separate so one program shape can be run with many input "datasets".
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Workload name (e.g. `"gcc"`).
    pub name: String,
    /// Seed controlling the generated program shape.
    pub construction_seed: u64,
    /// Base PC of the first branch.
    pub base_pc: u64,
    /// Number of code regions.
    pub regions: usize,
    /// Inclusive range of branch slots per region.
    pub branches_per_region: (u32, u32),
    /// Behaviour category weights.
    pub mix: MixWeights,
    /// Miss-probability range for weak-bias branches (e.g. `(0.05, 0.25)`).
    pub weak_bias_miss: (f64, f64),
    /// Taken-probability range for chaotic branches around 0.5.
    pub chaotic_taken: (f64, f64),
    /// Noise range for correlated branches.
    pub corr_noise: (f64, f64),
    /// Maximum number of history offsets a correlated branch depends on.
    pub corr_deps_max: u8,
    /// Probability a loop gets a fixed (vs variable) trip count.
    pub p_fixed_trip: f64,
    /// Fixed trip count range.
    pub fixed_trip: (u32, u32),
    /// Mean range for geometric (variable) trip counts.
    pub var_trip_mean: (f64, f64),
    /// Probability that a region's tail branches are wrapped in a loop.
    pub p_region_loop: f64,
    /// Markov self-transition weight (phase dwell).
    pub self_weight: f64,
    /// Number of random far edges per region (working-set churn).
    pub far_edges: usize,
    /// Number of kernel-overlay regions (models the OS code the IBS traces
    /// include: a large, mostly well-predicted footprint revisited from
    /// everywhere, which small tables cannot hold).
    pub kernel_regions: usize,
    /// Transition weight from each user region into the kernel overlay
    /// (each user region gets two kernel entry edges of this weight).
    pub kernel_entry_weight: f64,
}

impl WorkloadProfile {
    /// Expands the profile into a concrete program.
    ///
    /// Deterministic: the same profile always yields the same program.
    ///
    /// # Panics
    ///
    /// Panics if the profile is degenerate (zero regions or an invalid
    /// branch range); suite profiles are always valid.
    pub fn build(&self) -> Program {
        self.build_parts().0
    }

    /// Like [`build`](Self::build), but also returns the PC of the first
    /// kernel-overlay branch (`u64::MAX` when the profile has no kernel
    /// regions) so analyses can attribute records to user vs. kernel code.
    pub fn build_parts(&self) -> (Program, u64) {
        assert!(self.regions > 0, "profile must have at least one region");
        let (lo, hi) = self.branches_per_region;
        assert!(lo >= 1 && lo <= hi, "invalid branches_per_region");

        let mut rng = Xoshiro256StarStar::seed_from_u64(self.construction_seed);
        let mut b = ProgramBuilder::new(self.base_pc);
        let weights = self.mix.as_array();

        let mut region_ids = Vec::with_capacity(self.regions);
        for _ in 0..self.regions {
            let n = rng.range_inclusive(lo as u64, hi as u64) as usize;
            let mut plain: Vec<Slot> = Vec::new();
            let mut loop_branches: Vec<usize> = Vec::new();
            // Short straight-line preamble of always-taken checks: partial
            // history homogenization, as produced by real basic blocks.
            for _ in 0..rng.range_inclusive(3, 6) {
                let miss = 0.0002 + rng.next_f64() * 0.002;
                plain.push(Slot::Branch(b.branch(Behavior::Bias {
                    p_taken: 1.0 - miss,
                })));
            }
            for _ in 0..n {
                match rng.pick_weighted(&weights) {
                    0 => loop_branches.push(b.branch(Behavior::Loop(self.draw_trip(&mut rng)))),
                    1 => {
                        // "Strong" branches: almost always easy, but with a
                        // small fraction of permanently hard contexts. This
                        // diffuses mispredictions across the whole static
                        // population (static profiling cannot isolate them)
                        // while dynamic confidence still can (§4 vs §2).
                        let hard = 0.001 + rng.next_f64() * 0.022;
                        plain.push(Slot::Branch(
                            b.branch(Behavior::context_hard(rng.next_u64(), hard)),
                        ));
                    }
                    2 => {
                        // Hard branches are hard in *specific contexts*: a
                        // context mixture with asymptotic miss ~= hard/2.
                        let (mlo, mhi) = self.weak_bias_miss;
                        let miss = mlo + rng.next_f64() * (mhi - mlo);
                        let hard = (2.0 * miss).min(0.95);
                        plain.push(Slot::Branch(
                            b.branch(Behavior::context_hard(rng.next_u64(), hard)),
                        ));
                    }
                    3 => {
                        let k = 1 + rng.next_below(self.corr_deps_max as u64) as usize;
                        let mut deps = Vec::with_capacity(k);
                        while deps.len() < k {
                            let d = 1 + rng.next_below(8) as u8;
                            if !deps.contains(&d) {
                                deps.push(d);
                            }
                        }
                        let (nlo, nhi) = self.corr_noise;
                        let noise = nlo + rng.next_f64() * (nhi - nlo);
                        let invert = rng.bernoulli(0.5);
                        plain.push(Slot::Branch(
                            b.branch(Behavior::correlated(deps, invert, noise)),
                        ));
                    }
                    4 => {
                        let period = 2 + rng.next_below(3) as usize;
                        let bits: Vec<bool> = (0..period).map(|_| rng.bernoulli(0.5)).collect();
                        plain.push(Slot::Branch(b.branch(Behavior::Pattern { bits })));
                    }
                    5 => {
                        let (clo, chi) = self.chaotic_taken;
                        let p = clo + rng.next_f64() * (chi - clo);
                        plain.push(Slot::Branch(b.branch(Behavior::Bias { p_taken: p })));
                    }
                    _ => {
                        let d = 13 + rng.next_below(4) as u8; // offsets 13..=16
                        let noise = 0.003 + rng.next_f64() * 0.009;
                        plain.push(Slot::Branch(b.branch(Behavior::correlated(
                            vec![d],
                            rng.bernoulli(0.5),
                            noise,
                        ))));
                    }
                }
            }

            // Assemble the region body: possibly wrap a tail of *plain*
            // branch slots in a loop (one per declared loop branch). Only
            // plain slots are wrapped so loops never nest here — nested
            // geometric loops would blow a single region execution up to
            // millions of records and destroy region mixing.
            let mut slots = plain;
            for lb in loop_branches {
                let plain_tail = slots
                    .iter()
                    .rev()
                    .take_while(|s| matches!(s, Slot::Branch(_)))
                    .count();
                if plain_tail == 0 || !rng.bernoulli(self.p_region_loop) {
                    // Empty-body loop (counts only the loop branch itself).
                    slots.push(Slot::Loop {
                        branch: lb,
                        body: Vec::new(),
                    });
                } else {
                    let body_len = 1 + rng.next_below(plain_tail.min(4) as u64) as usize;
                    let body: Vec<Slot> = slots.split_off(slots.len() - body_len);
                    slots.push(Slot::Loop { branch: lb, body });
                }
            }
            if slots.is_empty() {
                // Degenerate draw (all slots became empty loops is impossible,
                // but a region of zero plain and zero loops can occur when
                // n==0 is excluded; guard anyway with a filler branch).
                slots.push(Slot::Branch(b.branch(Behavior::Bias { p_taken: 0.99 })));
            }
            region_ids.push(b.region(slots));
        }

        // Kernel overlay: flat regions of mostly strongly-biased branches
        // plus short loops, reachable from every user region. Individually
        // predictable, but collectively a footprint that overwhelms small
        // prediction/confidence tables — reproducing the OS-rich character
        // of the IBS traces.
        let kernel_start_pc = if self.kernel_regions == 0 {
            u64::MAX
        } else {
            b.pc_of(b.branch_count())
        };
        let mut kernel_ids = Vec::with_capacity(self.kernel_regions);
        let handler_count = if self.kernel_regions == 0 {
            0
        } else {
            (self.kernel_regions / 12).clamp(4, self.kernel_regions)
        };
        // Handler (entry) regions: long runs of taken-biased checks. They
        // execute under arbitrary user history, so they must predict well
        // from a weakly-taken cold counter, and they are long enough to
        // flush user bits out of the 16-bit history before interior kernel
        // code runs.
        for _ in 0..handler_count {
            let n = rng.range_inclusive(5, 8) as usize;
            let mut slots = Vec::with_capacity(n);
            for _ in 0..n {
                let miss = 0.0005 + rng.next_f64() * 0.004;
                slots.push(Slot::Branch(b.branch(Behavior::Bias {
                    p_taken: 1.0 - miss,
                })));
            }
            kernel_ids.push(b.region(slots));
        }
        for _ in handler_count..self.kernel_regions {
            // Straight-line preamble: kernel basic blocks run many
            // always-taken checks before the interesting branches, which
            // flushes caller bits out of the history register and makes the
            // contexts seen by the region body repeatable (and learnable).
            let n = rng.range_inclusive(6, 12) as usize;
            let preamble = rng.range_inclusive(8, 12) as usize;
            let mut slots = Vec::with_capacity(n + preamble);
            for _ in 0..preamble {
                let miss = 0.0002 + rng.next_f64() * 0.002;
                slots.push(Slot::Branch(b.branch(Behavior::Bias {
                    p_taken: 1.0 - miss,
                })));
            }
            for _ in 0..n {
                match rng.pick_weighted(&[0.70, 0.08, 0.06, 0.10, 0.06]) {
                    0 => {
                        let hard = 0.001 + rng.next_f64() * 0.017;
                        slots.push(Slot::Branch(
                            b.branch(Behavior::context_hard(rng.next_u64(), hard)),
                        ));
                    }
                    1 => {
                        let miss = 0.02 + rng.next_f64() * 0.06;
                        slots.push(Slot::Branch(b.branch(Behavior::context_hard(
                            rng.next_u64(),
                            (2.0 * miss).min(0.95),
                        ))));
                    }
                    2 => {
                        let d = 1 + rng.next_below(6) as u8;
                        let noise = 0.005 + rng.next_f64() * 0.02;
                        slots.push(Slot::Branch(b.branch(Behavior::correlated(
                            vec![d],
                            rng.bernoulli(0.5),
                            noise,
                        ))));
                    }
                    3 => {
                        let d = 13 + rng.next_below(4) as u8;
                        let noise = 0.005 + rng.next_f64() * 0.02;
                        slots.push(Slot::Branch(b.branch(Behavior::correlated(
                            vec![d],
                            rng.bernoulli(0.5),
                            noise,
                        ))));
                    }
                    _ => {
                        let lb = b.branch(Behavior::Loop(TripCount::Fixed(
                            rng.range_inclusive(2, 6) as u32,
                        )));
                        slots.push(Slot::Loop {
                            branch: lb,
                            body: Vec::new(),
                        });
                    }
                }
            }
            kernel_ids.push(b.region(slots));
        }

        // Markov wiring: self edge (phase dwell), next-region edge
        // (sequential locality), a few far edges (working-set churn), and
        // kernel entry edges.
        let r = region_ids.len();
        for (i, &rid) in region_ids.iter().enumerate() {
            b.transition(rid, rid, self.self_weight);
            b.transition(rid, region_ids[(i + 1) % r], 1.0);
            for _ in 0..self.far_edges {
                let target = region_ids[rng.next_below(r as u64) as usize];
                b.transition(rid, target, 0.25);
            }
            if !kernel_ids.is_empty() && self.kernel_entry_weight > 0.0 {
                // Syscall-style funneling: entries go through a small set
                // of handler regions, so the history contexts seen at
                // kernel entry repeat and warm up quickly; interior kernel
                // code then runs under kernel-local history.
                for _ in 0..2 {
                    let k = kernel_ids[rng.next_below(handler_count as u64) as usize];
                    b.transition(rid, k, self.kernel_entry_weight);
                }
            }
        }
        // Kernel regions form a deterministic ring — kernel control flow is
        // straight-line-like, so the history context at every interior
        // branch repeats exactly across visits (learnable at 64K), while
        // the sheer footprint overwhelms a 4K table. Each region can also
        // return to a random user region, giving bursts of a few regions.
        let k = kernel_ids.len();
        for (i, &kid) in kernel_ids.iter().enumerate() {
            b.transition(kid, kernel_ids[(i + 1) % k], 4.0);
            let back = region_ids[rng.next_below(r as u64) as usize];
            b.transition(kid, back, 1.0);
        }

        (
            b.build().expect("suite profiles generate valid programs"),
            kernel_start_pc,
        )
    }

    fn draw_trip(&self, rng: &mut Xoshiro256StarStar) -> TripCount {
        if rng.bernoulli(self.p_fixed_trip) {
            // Bimodal fixed trips, as in real code: short counted loops
            // whose full period fits the 16-bit history (fully learnable),
            // and long loops whose exits are unlearnable but *rare*.
            if rng.bernoulli(0.5) {
                TripCount::Fixed(rng.range_inclusive(2, 6) as u32)
            } else {
                let (lo, hi) = self.fixed_trip;
                TripCount::Fixed(rng.range_inclusive(lo as u64, hi as u64) as u32)
            }
        } else {
            let (mlo, mhi) = self.var_trip_mean;
            let mean = mlo + rng.next_f64() * (mhi - mlo);
            TripCount::Geometric {
                mean,
                cap: 4 * mean.ceil() as u32 + 8,
            }
        }
    }
}

/// A named, buildable benchmark: a workload profile plus its default
/// run seed.
#[derive(Debug, Clone)]
pub struct Benchmark {
    profile: WorkloadProfile,
    program: Program,
    run_seed: u64,
    kernel_start_pc: u64,
}

impl Benchmark {
    /// Builds a benchmark from a profile with the given run seed.
    pub fn new(profile: WorkloadProfile, run_seed: u64) -> Self {
        let (program, kernel_start_pc) = profile.build_parts();
        Self {
            profile,
            program,
            run_seed,
            kernel_start_pc,
        }
    }

    /// PC of the first kernel-overlay branch (`u64::MAX` if none), for
    /// attributing records to user vs. kernel code.
    pub fn kernel_start_pc(&self) -> u64 {
        self.kernel_start_pc
    }

    /// Benchmark name.
    pub fn name(&self) -> &str {
        &self.profile.name
    }

    /// The profile this benchmark was built from.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// The expanded program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The default run seed (distinguishes "input datasets" of one
    /// program shape; part of the execution engine's trace-cache key).
    pub fn run_seed(&self) -> u64 {
        self.run_seed
    }

    /// A walker over the benchmark's default run.
    pub fn walker(&self) -> Walker {
        self.program.walker(self.run_seed)
    }

    /// A walker seeded differently (a different "input dataset").
    pub fn walker_with_seed(&self, seed: u64) -> Walker {
        self.program.walker(seed)
    }
}

#[allow(clippy::too_many_arguments)]
fn profile(
    name: &str,
    construction_seed: u64,
    regions: usize,
    bpr: (u32, u32),
    mix: MixWeights,
    weak_bias_miss: (f64, f64),
    kernel_regions: usize,
    kernel_entry_weight: f64,
) -> WorkloadProfile {
    WorkloadProfile {
        name: name.to_owned(),
        construction_seed,
        base_pc: 0x0040_0000 + construction_seed * 0x0010_0000,
        regions,
        branches_per_region: bpr,
        mix,
        weak_bias_miss,
        chaotic_taken: (0.5 - 0.08, 0.5 + 0.08),
        corr_noise: (0.002, 0.01),
        corr_deps_max: 3,
        p_fixed_trip: 0.8,
        fixed_trip: (60, 300),
        var_trip_mean: (12.0, 35.0),
        p_region_loop: 0.75,
        self_weight: 6.0,
        far_edges: 2,
        kernel_regions,
        kernel_entry_weight,
    }
}

/// Builds the ten-workload IBS-like suite with default run seeds.
///
/// Names follow the IBS suite used by the paper; the profiles are tuned so
/// that a 64K-entry gshare predictor averages ≈3.85% mispredictions across
/// the suite (equal dynamic-branch weighting), with `jpeg` the most
/// predictable workload and `gcc` the least — matching §1.2 and Fig. 9 of
/// the paper.
pub fn ibs_like_suite() -> Vec<Benchmark> {
    suite_profiles()
        .into_iter()
        .enumerate()
        .map(|(i, p)| Benchmark::new(p, 0xC1AA_0000 + i as u64))
        .collect()
}

/// The raw profiles behind [`ibs_like_suite`]; exposed for calibration and
/// ablation tools that want to perturb them.
pub fn suite_profiles() -> Vec<WorkloadProfile> {
    // Mix weights: (loops, strong, weak, correlated, pattern, chaotic).
    let mk = |l, s, w, c, p, ch, lc| MixWeights {
        loops: l,
        strong_bias: s,
        weak_bias: w,
        correlated: c,
        pattern: p,
        chaotic: ch,
        long_correlated: lc,
    };
    let mut v = vec![
        // gcc: big static population, many hard data-dependent branches.
        profile(
            "gcc",
            11,
            400,
            (6, 16),
            mk(0.24, 0.295, 0.23, 0.06, 0.008, 0.012, 0.14),
            (0.025, 0.11),
            750,
            2.2,
        ),
        // groff: text formatting; moderate difficulty.
        profile(
            "groff",
            12,
            220,
            (5, 12),
            mk(0.28, 0.417, 0.12, 0.05, 0.005, 0.004, 0.12),
            (0.02, 0.08),
            380,
            1.8,
        ),
        // gs: postscript interpreter; dispatch-heavy.
        profile(
            "gs",
            13,
            280,
            (5, 13),
            mk(0.26, 0.417, 0.115, 0.06, 0.005, 0.004, 0.13),
            (0.02, 0.075),
            450,
            2.0,
        ),
        // jpeg: tight DSP loops, extremely predictable.
        profile(
            "jpeg",
            14,
            70,
            (4, 10),
            mk(0.40, 0.501, 0.025, 0.03, 0.001, 0.0004, 0.04),
            (0.008, 0.03),
            120,
            0.9,
        ),
        // mpeg_play: media loops with some data dependence.
        profile(
            "mpeg_play",
            15,
            120,
            (4, 11),
            mk(0.36, 0.464, 0.055, 0.04, 0.003, 0.001, 0.07),
            (0.012, 0.045),
            220,
            1.2,
        ),
        // nroff: formatting, similar to groff but smaller.
        profile(
            "nroff",
            16,
            190,
            (5, 12),
            mk(0.30, 0.431, 0.10, 0.05, 0.005, 0.003, 0.11),
            (0.02, 0.075),
            380,
            1.8,
        ),
        // real_gcc: like gcc, slightly smaller working set.
        profile(
            "real_gcc",
            17,
            360,
            (6, 15),
            mk(0.24, 0.323, 0.21, 0.06, 0.008, 0.009, 0.14),
            (0.025, 0.105),
            700,
            2.2,
        ),
        // sdet: OS-intensive system workload; lots of kernel-style checks.
        profile(
            "sdet",
            18,
            300,
            (5, 13),
            mk(0.26, 0.386, 0.14, 0.06, 0.006, 0.006, 0.13),
            (0.022, 0.085),
            1000,
            4.0,
        ),
        // verilog: event-driven simulation.
        profile(
            "verilog",
            19,
            250,
            (5, 12),
            mk(0.27, 0.395, 0.14, 0.06, 0.006, 0.005, 0.12),
            (0.02, 0.08),
            380,
            1.8,
        ),
        // video_play: streaming decode; predictable.
        profile(
            "video_play",
            20,
            100,
            (4, 10),
            mk(0.38, 0.487, 0.035, 0.03, 0.002, 0.0007, 0.055),
            (0.01, 0.038),
            180,
            1.2,
        ),
    ];
    // Per-benchmark refinements: the media workloads are dominated by
    // deterministic counted loops and touch little else.
    for p in v.iter_mut() {
        match p.name.as_str() {
            "jpeg" | "video_play" | "mpeg_play" => {
                p.p_fixed_trip = 0.92;
                p.far_edges = 1;
                p.fixed_trip = (100, 400);
            }
            "gcc" | "real_gcc" => {
                p.p_fixed_trip = 0.72;
            }
            _ => {}
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceStats;

    #[test]
    fn suite_has_ten_named_benchmarks() {
        let suite = ibs_like_suite();
        let names: Vec<&str> = suite.iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec![
                "gcc",
                "groff",
                "gs",
                "jpeg",
                "mpeg_play",
                "nroff",
                "real_gcc",
                "sdet",
                "verilog",
                "video_play"
            ]
        );
    }

    #[test]
    fn benchmarks_are_deterministic() {
        let a = ibs_like_suite();
        let b = ibs_like_suite();
        for (x, y) in a.iter().zip(&b) {
            let tx: Vec<_> = x.walker().take(2000).collect();
            let ty: Vec<_> = y.walker().take(2000).collect();
            assert_eq!(tx, ty, "benchmark {} not deterministic", x.name());
        }
    }

    #[test]
    fn gcc_has_bigger_static_population_than_jpeg() {
        let suite = ibs_like_suite();
        let gcc = suite.iter().find(|b| b.name() == "gcc").unwrap();
        let jpeg = suite.iter().find(|b| b.name() == "jpeg").unwrap();
        assert!(
            gcc.program().static_branches() > 2 * jpeg.program().static_branches(),
            "gcc {} vs jpeg {}",
            gcc.program().static_branches(),
            jpeg.program().static_branches()
        );
    }

    #[test]
    fn traces_touch_many_static_branches() {
        for bench in ibs_like_suite() {
            let stats: TraceStats = bench.walker().take(50_000).collect();
            assert!(
                stats.static_branches() > 50,
                "{} touched only {} static branches",
                bench.name(),
                stats.static_branches()
            );
            let rate = stats.taken_rate();
            assert!(
                (0.25..0.9).contains(&rate),
                "{} taken rate {rate} implausible",
                bench.name()
            );
        }
    }

    #[test]
    fn different_run_seeds_give_different_traces() {
        let suite = ibs_like_suite();
        let b = &suite[0];
        let t1: Vec<_> = b.walker_with_seed(1).take(1000).collect();
        let t2: Vec<_> = b.walker_with_seed(2).take(1000).collect();
        assert_ne!(t1, t2);
    }

    #[test]
    fn base_pcs_do_not_collide_across_benchmarks() {
        let suite = ibs_like_suite();
        for w in suite.windows(2) {
            let hi_a = w[0].profile().base_pc + 4 * w[0].program().static_branches() as u64;
            assert!(
                hi_a < w[1].profile().base_pc || w[1].profile().base_pc < w[0].profile().base_pc,
                "overlap between {} and {}",
                w[0].name(),
                w[1].name()
            );
        }
    }
}
