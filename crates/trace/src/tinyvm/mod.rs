//! A tiny register VM whose execution emits branch traces.
//!
//! While [`crate::suite`] generates *statistically* shaped workloads, this
//! module provides the complementary substrate: small but real programs
//! (sorting, searching, sieving, state machines) whose organic control flow
//! exercises predictors and confidence mechanisms end to end.
//!
//! * [`isa`] — registers, conditions, ALU ops, instructions.
//! * [`asm`] — a two-pass assembler with labels and comments.
//! * [`machine`] — the interpreter; conditional branches emit
//!   [`crate::BranchRecord`]s.
//! * [`programs`] — ready-made seeded sample programs.
//!
//! # Examples
//!
//! ```
//! use cira_trace::tinyvm::{assemble, Machine};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let prog = assemble("li r1, 4\nli r2, 0\nloop: addi r2, r2, 1\nblt r2, r1, loop\nhalt")?;
//! let trace = Machine::new(prog, 0).run(1_000)?;
//! assert_eq!(trace.iter().filter(|r| r.taken).count(), 3);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod isa;
pub mod machine;
pub mod programs;

pub use asm::{assemble, AsmError, AsmErrorKind};
pub use isa::{AluOp, Cond, Instr, Reg};
pub use machine::{Machine, VmError};
