//! The tiny VM interpreter.
//!
//! Executes a program (a `Vec<Instr>`, usually from
//! [`assemble`](super::assemble)) over a flat word memory, emitting a
//! [`BranchRecord`] for every *conditional* branch executed. The PC reported
//! in records is `code_base + 4 * instruction_index`, mimicking a 4-byte
//! fixed-width encoding.

use std::fmt;

use super::isa::{Instr, Reg};
use crate::record::BranchRecord;

/// Runtime errors raised by [`Machine::step`] / [`Machine::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// The PC ran off the end of the program without reaching `halt`.
    PcOutOfRange(usize),
    /// A load or store addressed memory outside the configured size.
    MemOutOfRange {
        /// The effective address of the access.
        addr: i64,
        /// The memory size in words.
        size: usize,
    },
    /// The step budget was exhausted before `halt`.
    StepLimitExceeded(u64),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::PcOutOfRange(pc) => write!(f, "pc {pc} outside program"),
            VmError::MemOutOfRange { addr, size } => {
                write!(f, "memory access at {addr} outside 0..{size}")
            }
            VmError::StepLimitExceeded(n) => write!(f, "step limit {n} exceeded"),
        }
    }
}

impl std::error::Error for VmError {}

/// Tiny VM state: registers, word memory, and a program.
///
/// # Examples
///
/// ```
/// use cira_trace::tinyvm::{assemble, Machine};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let prog = assemble("li r1, 3\nli r2, 0\nloop: addi r2, r2, 1\nbne r2, r1, loop\nhalt")?;
/// let mut m = Machine::new(prog, 16);
/// let trace = m.run(10_000)?;
/// assert_eq!(trace.len(), 3);              // the loop branch ran 3 times
/// assert_eq!(m.reg(2), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    program: Vec<Instr>,
    regs: [i64; Reg::COUNT],
    mem: Vec<i64>,
    pc: usize,
    code_base: u64,
    halted: bool,
    steps: u64,
}

impl Machine {
    /// Creates a machine with `mem_words` words of zeroed memory.
    pub fn new(program: Vec<Instr>, mem_words: usize) -> Self {
        Self {
            program,
            regs: [0; Reg::COUNT],
            mem: vec![0; mem_words],
            pc: 0,
            code_base: 0x0001_0000,
            halted: false,
            steps: 0,
        }
    }

    /// Sets the base address used for branch-record PCs (default `0x10000`).
    pub fn with_code_base(mut self, base: u64) -> Self {
        self.code_base = base;
        self
    }

    /// Reads a register.
    pub fn reg(&self, index: u8) -> i64 {
        self.regs[Reg::new(index).index()]
    }

    /// Writes a register (useful for passing arguments to programs).
    pub fn set_reg(&mut self, index: u8, value: i64) {
        self.regs[Reg::new(index).index()] = value;
    }

    /// Borrows data memory.
    pub fn mem(&self) -> &[i64] {
        &self.mem
    }

    /// Mutably borrows data memory (for initializing inputs).
    pub fn mem_mut(&mut self) -> &mut [i64] {
        &mut self.mem
    }

    /// Whether the machine has executed `halt`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    fn effective(&self, base: Reg, off: i64) -> Result<usize, VmError> {
        let addr = self.regs[base.index()].wrapping_add(off);
        if addr < 0 || addr as usize >= self.mem.len() {
            Err(VmError::MemOutOfRange {
                addr,
                size: self.mem.len(),
            })
        } else {
            Ok(addr as usize)
        }
    }

    /// Executes one instruction.
    ///
    /// Returns `Ok(Some(record))` if the instruction was a conditional
    /// branch, `Ok(None)` otherwise (including when already halted).
    ///
    /// # Errors
    ///
    /// Returns [`VmError`] on a wild PC or memory access.
    pub fn step(&mut self) -> Result<Option<BranchRecord>, VmError> {
        if self.halted {
            return Ok(None);
        }
        let instr = *self
            .program
            .get(self.pc)
            .ok_or(VmError::PcOutOfRange(self.pc))?;
        let branch_pc = self.code_base + 4 * self.pc as u64;
        self.steps += 1;
        let mut record = None;
        match instr {
            Instr::Li(rd, imm) => {
                self.regs[rd.index()] = imm;
                self.pc += 1;
            }
            Instr::Mov(rd, rs) => {
                self.regs[rd.index()] = self.regs[rs.index()];
                self.pc += 1;
            }
            Instr::Alu(op, rd, ra, rb) => {
                self.regs[rd.index()] = op.apply(self.regs[ra.index()], self.regs[rb.index()]);
                self.pc += 1;
            }
            Instr::AluI(op, rd, ra, imm) => {
                self.regs[rd.index()] = op.apply(self.regs[ra.index()], imm);
                self.pc += 1;
            }
            Instr::Ld(rd, ra, off) => {
                let addr = self.effective(ra, off)?;
                self.regs[rd.index()] = self.mem[addr];
                self.pc += 1;
            }
            Instr::St(rs, ra, off) => {
                let addr = self.effective(ra, off)?;
                self.mem[addr] = self.regs[rs.index()];
                self.pc += 1;
            }
            Instr::Branch(cond, ra, rb, target) => {
                let taken = cond.eval(self.regs[ra.index()], self.regs[rb.index()]);
                record = Some(BranchRecord::new(branch_pc, taken));
                self.pc = if taken { target } else { self.pc + 1 };
            }
            Instr::Jmp(target) => {
                self.pc = target;
            }
            Instr::Halt => {
                self.halted = true;
            }
        }
        Ok(record)
    }

    /// Runs until `halt` or until `max_steps` instructions have executed,
    /// collecting the conditional-branch trace.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::StepLimitExceeded`] if the budget runs out, or any
    /// error from [`step`](Self::step).
    pub fn run(&mut self, max_steps: u64) -> Result<Vec<BranchRecord>, VmError> {
        let mut trace = Vec::new();
        let start = self.steps;
        while !self.halted {
            if self.steps - start >= max_steps {
                return Err(VmError::StepLimitExceeded(max_steps));
            }
            if let Some(r) = self.step()? {
                trace.push(r);
            }
        }
        cira_obs::debug!(
            "vm halted",
            steps = self.steps - start,
            branches = trace.len()
        );
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tinyvm::assemble;

    fn run_src(src: &str, mem: usize) -> (Machine, Vec<BranchRecord>) {
        let prog = assemble(src).unwrap();
        let mut m = Machine::new(prog, mem);
        let t = m.run(1_000_000).unwrap();
        (m, t)
    }

    #[test]
    fn arithmetic_and_halt() {
        let (m, t) = run_src("li r1, 6\nli r2, 7\nmul r3, r1, r2\nhalt", 0);
        assert_eq!(m.reg(3), 42);
        assert!(t.is_empty());
        assert!(m.halted());
    }

    #[test]
    fn loop_emits_branch_records() {
        let (m, t) = run_src(
            "li r1, 5\nli r2, 0\nloop: addi r2, r2, 1\nblt r2, r1, loop\nhalt",
            0,
        );
        assert_eq!(m.reg(2), 5);
        assert_eq!(t.len(), 5);
        assert!(t[..4].iter().all(|r| r.taken));
        assert!(!t[4].taken);
        // All records come from the same static branch.
        assert!(t.iter().all(|r| r.pc == t[0].pc));
    }

    #[test]
    fn memory_load_store() {
        let (m, _) = run_src("li r1, 3\nli r2, 99\nst r2, r1, 2\nld r3, r1, 2\nhalt", 8);
        assert_eq!(m.mem()[5], 99);
        assert_eq!(m.reg(3), 99);
    }

    #[test]
    fn mem_out_of_range_reported() {
        let prog = assemble("li r1, 100\nld r2, r1, 0\nhalt").unwrap();
        let mut m = Machine::new(prog, 8);
        let err = m.run(100).unwrap_err();
        assert_eq!(err, VmError::MemOutOfRange { addr: 100, size: 8 });
    }

    #[test]
    fn negative_address_reported() {
        let prog = assemble("li r1, -1\nst r1, r1, 0\nhalt").unwrap();
        let mut m = Machine::new(prog, 8);
        assert!(matches!(
            m.run(100),
            Err(VmError::MemOutOfRange { addr: -1, .. })
        ));
    }

    #[test]
    fn pc_off_end_reported() {
        let prog = assemble("li r1, 1").unwrap(); // no halt
        let mut m = Machine::new(prog, 0);
        assert_eq!(m.run(100).unwrap_err(), VmError::PcOutOfRange(1));
    }

    #[test]
    fn step_limit_reported() {
        let prog = assemble("spin: jmp spin").unwrap();
        let mut m = Machine::new(prog, 0);
        assert_eq!(m.run(50).unwrap_err(), VmError::StepLimitExceeded(50));
    }

    #[test]
    fn step_after_halt_is_noop() {
        let prog = assemble("halt").unwrap();
        let mut m = Machine::new(prog, 0);
        m.run(10).unwrap();
        assert_eq!(m.step().unwrap(), None);
        assert!(m.halted());
    }

    #[test]
    fn code_base_shapes_record_pcs() {
        let prog = assemble("li r1, 1\nbeq r1, r1, done\ndone: halt").unwrap();
        let mut m = Machine::new(prog, 0).with_code_base(0x8000);
        let t = m.run(100).unwrap();
        assert_eq!(t[0].pc, 0x8000 + 4);
    }

    #[test]
    fn set_reg_passes_arguments() {
        let prog = assemble("addi r2, r1, 1\nhalt").unwrap();
        let mut m = Machine::new(prog, 0);
        m.set_reg(1, 41);
        m.run(10).unwrap();
        assert_eq!(m.reg(2), 42);
    }
}
