//! A two-pass assembler for the tiny VM.
//!
//! Syntax, one instruction per line:
//!
//! ```text
//! ; comments run to end of line (also '#')
//! start:              ; labels end with ':', may share a line with an instr
//!     li   r1, 10
//! loop:
//!     addi r2, r2, 1
//!     bne  r2, r1, loop
//!     halt
//! ```
//!
//! Mnemonics: `li rd, imm` · `mov rd, rs` · `add/sub/mul/and/or/xor/shl/shr/
//! div/rem rd, ra, rb` (append `i` for an immediate last operand) ·
//! `ld rd, ra, off` · `st rs, ra, off` · `beq/bne/blt/bge ra, rb, label` ·
//! `jmp label` · `halt`.

use std::collections::HashMap;
use std::fmt;

use super::isa::{AluOp, Cond, Instr, Reg};

/// Assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number of the offending source line.
    pub line: usize,
    /// What went wrong.
    pub kind: AsmErrorKind,
}

/// Kinds of assembly failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmErrorKind {
    /// Unknown instruction mnemonic.
    UnknownMnemonic(String),
    /// Operand count mismatch for the mnemonic.
    WrongOperandCount {
        /// The mnemonic in question.
        mnemonic: String,
        /// Expected operand count.
        expected: usize,
        /// Operands actually present.
        found: usize,
    },
    /// An operand that should be a register is not `r0`–`r15`.
    BadRegister(String),
    /// An operand that should be an integer immediate failed to parse.
    BadImmediate(String),
    /// A branch/jump target label was never defined.
    UndefinedLabel(String),
    /// The same label is defined twice.
    DuplicateLabel(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic `{m}`"),
            AsmErrorKind::WrongOperandCount {
                mnemonic,
                expected,
                found,
            } => {
                write!(f, "`{mnemonic}` expects {expected} operands, found {found}")
            }
            AsmErrorKind::BadRegister(s) => write!(f, "invalid register `{s}`"),
            AsmErrorKind::BadImmediate(s) => write!(f, "invalid immediate `{s}`"),
            AsmErrorKind::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmErrorKind::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
        }
    }
}

impl std::error::Error for AsmError {}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let bad = || AsmError {
        line,
        kind: AsmErrorKind::BadRegister(tok.to_owned()),
    };
    let rest = tok.strip_prefix('r').ok_or_else(bad)?;
    let idx: u8 = rest.parse().map_err(|_| bad())?;
    if (idx as usize) < Reg::COUNT {
        Ok(Reg::new(idx))
    } else {
        Err(bad())
    }
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, AsmError> {
    let parsed = if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("-0x")) {
        i64::from_str_radix(hex, 16).map(|v| if tok.starts_with('-') { -v } else { v })
    } else {
        tok.parse()
    };
    parsed.map_err(|_| AsmError {
        line,
        kind: AsmErrorKind::BadImmediate(tok.to_owned()),
    })
}

fn alu_op(m: &str) -> Option<(AluOp, bool)> {
    let (base, imm) = match m.strip_suffix('i') {
        // `li` is not an ALU op; handled separately.
        Some(base) if base != "l" => (base, true),
        _ => (m, false),
    };
    let op = match base {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        "div" => AluOp::Div,
        "rem" => AluOp::Rem,
        _ => return None,
    };
    Some((op, imm))
}

fn cond_op(m: &str) -> Option<Cond> {
    match m {
        "beq" => Some(Cond::Eq),
        "bne" => Some(Cond::Ne),
        "blt" => Some(Cond::Lt),
        "bge" => Some(Cond::Ge),
        _ => None,
    }
}

/// Assembles source text into a program (instruction vector).
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered, with its source line.
///
/// # Examples
///
/// ```
/// use cira_trace::tinyvm::assemble;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let prog = assemble("li r1, 5\nhalt\n")?;
/// assert_eq!(prog.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn assemble(source: &str) -> Result<Vec<Instr>, AsmError> {
    // Pass 1: strip comments, record labels, collect (line_no, tokens).
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut lines: Vec<(usize, Vec<String>)> = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        let line_no = i + 1;
        let mut text = raw;
        if let Some(p) = text.find([';', '#']) {
            text = &text[..p];
        }
        let mut text = text.trim();
        // Labels (possibly several) at the start of the line.
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break;
            }
            if labels.insert(label.to_owned(), lines.len()).is_some() {
                return Err(AsmError {
                    line: line_no,
                    kind: AsmErrorKind::DuplicateLabel(label.to_owned()),
                });
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let tokens: Vec<String> = text
            .split(|c: char| c.is_whitespace() || c == ',')
            .filter(|t| !t.is_empty())
            .map(str::to_lowercase)
            .collect();
        if tokens.is_empty() {
            // e.g. a line of stray separators ("‚ ,"): nothing to encode.
            continue;
        }
        lines.push((line_no, tokens));
    }

    // Pass 2: encode.
    let mut out = Vec::with_capacity(lines.len());
    for (line, toks) in &lines {
        let line = *line;
        let m = toks[0].as_str();
        let ops = &toks[1..];
        let want = |n: usize| -> Result<(), AsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(AsmError {
                    line,
                    kind: AsmErrorKind::WrongOperandCount {
                        mnemonic: m.to_owned(),
                        expected: n,
                        found: ops.len(),
                    },
                })
            }
        };
        let target = |tok: &str| -> Result<usize, AsmError> {
            labels.get(tok).copied().ok_or_else(|| AsmError {
                line,
                kind: AsmErrorKind::UndefinedLabel(tok.to_owned()),
            })
        };
        let instr = if m == "li" {
            want(2)?;
            Instr::Li(parse_reg(&ops[0], line)?, parse_imm(&ops[1], line)?)
        } else if m == "mov" {
            want(2)?;
            Instr::Mov(parse_reg(&ops[0], line)?, parse_reg(&ops[1], line)?)
        } else if m == "ld" {
            want(3)?;
            Instr::Ld(
                parse_reg(&ops[0], line)?,
                parse_reg(&ops[1], line)?,
                parse_imm(&ops[2], line)?,
            )
        } else if m == "st" {
            want(3)?;
            Instr::St(
                parse_reg(&ops[0], line)?,
                parse_reg(&ops[1], line)?,
                parse_imm(&ops[2], line)?,
            )
        } else if m == "jmp" {
            want(1)?;
            Instr::Jmp(target(&ops[0])?)
        } else if m == "halt" {
            want(0)?;
            Instr::Halt
        } else if let Some(cond) = cond_op(m) {
            want(3)?;
            Instr::Branch(
                cond,
                parse_reg(&ops[0], line)?,
                parse_reg(&ops[1], line)?,
                target(&ops[2])?,
            )
        } else if let Some((op, imm)) = alu_op(m) {
            want(3)?;
            let rd = parse_reg(&ops[0], line)?;
            let ra = parse_reg(&ops[1], line)?;
            if imm {
                Instr::AluI(op, rd, ra, parse_imm(&ops[2], line)?)
            } else {
                Instr::Alu(op, rd, ra, parse_reg(&ops[2], line)?)
            }
        } else {
            return Err(AsmError {
                line,
                kind: AsmErrorKind::UnknownMnemonic(m.to_owned()),
            });
        };
        out.push(instr);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_basic_program() {
        let prog = assemble(
            "; count to ten
             li r1, 10
             li r2, 0
             loop: addi r2, r2, 1
             bne r2, r1, loop
             halt",
        )
        .unwrap();
        assert_eq!(prog.len(), 5);
        assert_eq!(prog[0], Instr::Li(Reg::new(1), 10));
        assert_eq!(
            prog[2],
            Instr::AluI(AluOp::Add, Reg::new(2), Reg::new(2), 1)
        );
        assert_eq!(
            prog[3],
            Instr::Branch(Cond::Ne, Reg::new(2), Reg::new(1), 2)
        );
        assert_eq!(prog[4], Instr::Halt);
    }

    #[test]
    fn forward_labels_resolve() {
        let prog = assemble("jmp end\nli r1, 1\nend: halt").unwrap();
        assert_eq!(prog[0], Instr::Jmp(2));
    }

    #[test]
    fn label_on_own_line() {
        let prog = assemble("top:\n  li r1, 2\n  jmp top\n").unwrap();
        assert_eq!(prog[1], Instr::Jmp(0));
    }

    #[test]
    fn hex_and_negative_immediates() {
        let prog = assemble("li r1, 0x1f\nli r2, -3\nli r3, -0x10\nhalt").unwrap();
        assert_eq!(prog[0], Instr::Li(Reg::new(1), 31));
        assert_eq!(prog[1], Instr::Li(Reg::new(2), -3));
        assert_eq!(prog[2], Instr::Li(Reg::new(3), -16));
    }

    #[test]
    fn comments_and_case_insensitive() {
        let prog = assemble("LI R1, 4 # four\n  HALT ; done").unwrap();
        assert_eq!(prog.len(), 2);
    }

    #[test]
    fn unknown_mnemonic_reported_with_line() {
        let err = assemble("li r1, 1\nfrobnicate r1").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, AsmErrorKind::UnknownMnemonic(_)));
    }

    #[test]
    fn bad_register_reported() {
        let err = assemble("li r77, 1").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::BadRegister(_)));
    }

    #[test]
    fn bad_immediate_reported() {
        let err = assemble("li r1, banana").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::BadImmediate(_)));
    }

    #[test]
    fn undefined_label_reported() {
        let err = assemble("jmp nowhere").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::UndefinedLabel(_)));
    }

    #[test]
    fn duplicate_label_reported() {
        let err = assemble("a: li r1, 1\na: halt").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::DuplicateLabel(_)));
    }

    #[test]
    fn wrong_operand_count_reported() {
        let err = assemble("li r1").unwrap_err();
        assert!(matches!(
            err.kind,
            AsmErrorKind::WrongOperandCount {
                expected: 2,
                found: 1,
                ..
            }
        ));
    }

    #[test]
    fn st_and_ld_encode() {
        let prog = assemble("st r1, r2, 8\nld r3, r2, 8\nhalt").unwrap();
        assert_eq!(prog[0], Instr::St(Reg::new(1), Reg::new(2), 8));
        assert_eq!(prog[1], Instr::Ld(Reg::new(3), Reg::new(2), 8));
    }

    #[test]
    fn separator_only_lines_are_ignored() {
        // Regression: a line of commas used to panic the encoder.
        let prog = assemble(
            ", ,
li r1, 1
 ,
halt",
        )
        .unwrap();
        assert_eq!(prog.len(), 2);
    }

    #[test]
    fn error_display_mentions_line() {
        let err = assemble("li r1, x").unwrap_err();
        assert!(err.to_string().starts_with("line 1:"));
    }
}
