//! Ready-made tiny-VM sample programs.
//!
//! Each constructor assembles a real algorithm, initializes its memory
//! inputs from a seed, and returns a [`Machine`] ready to
//! [`run`](Machine::run). Their control flow yields *organic* branch traces
//! (loop nests, data-dependent comparisons, early exits) used by examples
//! and end-to-end tests.

use super::asm::assemble;
use super::machine::Machine;
use crate::record::BranchRecord;
use crate::rng::Xoshiro256StarStar;

/// Bubble-sorts `n` seeded random words (in-place, early-exit variant).
///
/// Branch mix: a predictable outer loop, an inner loop whose comparison
/// branch is data-dependent early on and becomes fully biased as the array
/// sorts.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 4096`.
pub fn bubble_sort(n: usize, seed: u64) -> Machine {
    assert!((1..=4096).contains(&n), "n must be in 1..=4096");
    let src = "
        ; r1 = n, memory[0..n] = data
        li   r2, 1              ; swapped flag
    outer:
        beq  r2, r0, done       ; stop when no swaps happened
        li   r2, 0
        li   r3, 0              ; i = 0
        subi r4, r1, 1          ; n-1
    inner:
        bge  r3, r4, outer_end
        ld   r5, r3, 0          ; a[i]
        addi r6, r3, 1
        ld   r7, r6, 0          ; a[i+1]
        bge  r7, r5, no_swap    ; already ordered?
        st   r7, r3, 0
        st   r5, r6, 0
        li   r2, 1
    no_swap:
        addi r3, r3, 1
        jmp  inner
    outer_end:
        jmp  outer
    done:
        halt";
    let mut m = Machine::new(
        assemble(src).expect("bubble_sort source assembles"),
        n.max(1),
    );
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    for w in m.mem_mut().iter_mut() {
        *w = (rng.next_u64() % 100_000) as i64;
    }
    m.set_reg(1, n as i64);
    m
}

/// Binary-searches a sorted array of `n` words for `queries` seeded keys.
///
/// Branch mix: the classic hard-to-predict mid-comparison plus a
/// well-predicted search loop.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 4096`.
pub fn binary_search(n: usize, queries: usize, seed: u64) -> Machine {
    assert!((1..=4096).contains(&n), "n must be in 1..=4096");
    let src = "
        ; r1 = n, r2 = queries, mem[0..n] sorted data, mem[n..n+queries] keys
        li   r3, 0              ; q = 0
    next_query:
        bge  r3, r2, done
        add  r4, r1, r3
        ld   r5, r4, 0          ; key
        li   r6, 0              ; lo
        mov  r7, r1             ; hi = n
    search:
        bge  r6, r7, not_found
        add  r8, r6, r7
        shri r8, r8, 1          ; mid
        ld   r9, r8, 0
        beq  r9, r5, found
        blt  r9, r5, go_right
        mov  r7, r8             ; hi = mid
        jmp  search
    go_right:
        addi r6, r8, 1          ; lo = mid+1
        jmp  search
    found:
    not_found:
        addi r3, r3, 1
        jmp  next_query
    done:
        halt";
    let mut m = Machine::new(
        assemble(src).expect("binary_search source assembles"),
        n + queries,
    );
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut data: Vec<i64> = (0..n).map(|_| (rng.next_u64() % 10_000) as i64).collect();
    data.sort_unstable();
    for (i, v) in data.iter().enumerate() {
        m.mem_mut()[i] = *v;
    }
    for q in 0..queries {
        m.mem_mut()[n + q] = (rng.next_u64() % 10_000) as i64;
    }
    m.set_reg(1, n as i64);
    m.set_reg(2, queries as i64);
    m
}

/// Naive substring search of a random needle in a random haystack.
///
/// Branch mix: a mismatch-dominated inner comparison (strongly biased
/// not-equal) with occasional partial-match runs.
///
/// # Panics
///
/// Panics if sizes are zero, `needle > hay`, or `hay > 4000`.
pub fn string_match(hay: usize, needle: usize, seed: u64) -> Machine {
    assert!(hay >= 1 && needle >= 1 && needle <= hay && hay <= 4000);
    let src = "
        ; r1 = hay len, r2 = needle len, mem[0..hay] text, mem[hay..] pattern
        sub  r3, r1, r2         ; last start
        li   r4, 0              ; start = 0
        li   r15, 0             ; match count
    outer:
        blt  r3, r4, done       ; start > last?
        li   r5, 0              ; j = 0
    inner:
        bge  r5, r2, hit        ; matched the whole needle
        add  r6, r4, r5
        ld   r7, r6, 0
        add  r8, r1, r5
        ld   r9, r8, 0
        bne  r7, r9, miss
        addi r5, r5, 1
        jmp  inner
    hit:
        addi r15, r15, 1
    miss:
        addi r4, r4, 1
        jmp  outer
    done:
        halt";
    let mut m = Machine::new(
        assemble(src).expect("string_match source assembles"),
        hay + needle,
    );
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    for i in 0..hay {
        m.mem_mut()[i] = (rng.next_u64() % 4) as i64; // small alphabet => partial matches
    }
    for j in 0..needle {
        m.mem_mut()[hay + j] = (rng.next_u64() % 4) as i64;
    }
    m.set_reg(1, hay as i64);
    m.set_reg(2, needle as i64);
    m
}

/// Computes Collatz trajectory lengths for seeds `1..=n`.
///
/// Branch mix: the parity branch is effectively random — a classic
/// hard-to-predict branch.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn collatz(n: u64) -> Machine {
    assert!(n >= 1, "n must be positive");
    let src = "
        ; r1 = n
        li   r2, 1              ; current seed
        li   r15, 0             ; total steps
    next_seed:
        mov  r3, r2             ; x = seed
    steps:
        li   r4, 1
        beq  r3, r4, seed_done  ; x == 1?
        andi r5, r3, 1
        beq  r5, r0, even
        muli r3, r3, 3
        addi r3, r3, 1
        jmp  counted
    even:
        shri r3, r3, 1
    counted:
        addi r15, r15, 1
        jmp  steps
    seed_done:
        addi r2, r2, 1
        bge  r1, r2, next_seed  ; seed <= n?
        halt";
    let mut m = Machine::new(assemble(src).expect("collatz source assembles"), 0);
    m.set_reg(1, n as i64);
    m
}

/// Sieve of Eratosthenes up to `n`.
///
/// Branch mix: a strongly biased composite-check branch plus nested loops
/// with data-dependent strides.
///
/// # Panics
///
/// Panics if `n < 4` or `n > 8192`.
pub fn sieve(n: usize) -> Machine {
    assert!((4..=8192).contains(&n));
    let src = "
        ; r1 = n, mem[i] = 1 if composite
        li   r2, 2              ; p = 2
    next_p:
        mul  r3, r2, r2
        blt  r1, r3, done       ; p*p > n?
        ld   r4, r2, 0
        bne  r4, r0, skip       ; already composite?
        mov  r5, r3             ; m = p*p
    mark:
        blt  r1, r5, skip       ; m > n?
        li   r6, 1
        st   r6, r5, 0
        add  r5, r5, r2
        jmp  mark
    skip:
        addi r2, r2, 1
        jmp  next_p
    done:
        halt";
    let mut m = Machine::new(assemble(src).expect("sieve source assembles"), n + 1);
    m.set_reg(1, n as i64);
    m
}

/// A token-driven finite state machine over a seeded input tape.
///
/// Branch mix: dispatch-style equality chains whose bias follows the token
/// distribution — a stand-in for interpreter loops.
///
/// # Panics
///
/// Panics if `tokens == 0` or `tokens > 8192`.
pub fn fsm(tokens: usize, seed: u64) -> Machine {
    assert!((1..=8192).contains(&tokens));
    let src = "
        ; r1 = token count, mem[0..count] tokens in 0..=3, r15 = state
        li   r2, 0              ; i
        li   r15, 0
    next_tok:
        bge  r2, r1, done
        ld   r3, r2, 0
        li   r4, 0
        beq  r3, r4, t0
        li   r4, 1
        beq  r3, r4, t1
        li   r4, 2
        beq  r3, r4, t2
        ; token 3: reset state
        li   r15, 0
        jmp  advance
    t0: addi r15, r15, 1
        jmp advance
    t1: muli r15, r15, 2
        andi r15, r15, 255
        jmp advance
    t2: subi r15, r15, 1
        jmp advance
    advance:
        addi r2, r2, 1
        jmp next_tok
    done:
        halt";
    let mut m = Machine::new(assemble(src).expect("fsm source assembles"), tokens);
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    for w in m.mem_mut().iter_mut() {
        // Skewed token distribution: t0 common, t3 rare.
        *w = rng.pick_weighted(&[0.5, 0.25, 0.2, 0.05]) as i64;
    }
    m.set_reg(1, tokens as i64);
    m
}

/// Iterative quicksort over `n` seeded words, using an explicit stack in
/// the upper half of memory.
///
/// Branch mix: data-dependent partition comparisons whose bias drifts as
/// subarrays shrink, plus stack-management branches.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 1500`.
pub fn quicksort(n: usize, seed: u64) -> Machine {
    assert!((1..=1500).contains(&n), "n must be in 1..=1500");
    // Memory layout: [0..n) data, [n..) stack of (lo, hi) pairs. r1 = n.
    let src = "
        ; push initial range (0, n-1)
        mov  r2, r1             ; sp = n
        li   r3, 0
        st   r3, r2, 0          ; lo
        subi r4, r1, 1
        st   r4, r2, 1          ; hi
        addi r2, r2, 2
    pop:
        beq  r2, r1, done       ; stack empty?
        subi r2, r2, 2
        ld   r3, r2, 0          ; lo
        ld   r4, r2, 1          ; hi
        bge  r3, r4, pop        ; trivial range
        ; partition around pivot = a[hi]
        ld   r5, r4, 0          ; pivot
        mov  r6, r3             ; i = lo
        mov  r7, r3             ; j = lo
    part:
        bge  r7, r4, part_done
        ld   r8, r7, 0
        bge  r8, r5, no_swap
        ld   r9, r6, 0          ; swap a[i], a[j]
        st   r8, r6, 0
        st   r9, r7, 0
        addi r6, r6, 1
    no_swap:
        addi r7, r7, 1
        jmp  part
    part_done:
        ld   r9, r6, 0          ; swap a[i], a[hi]
        st   r5, r6, 0
        st   r9, r4, 0
        ; push (lo, i-1) and (i+1, hi)
        subi r8, r6, 1
        st   r3, r2, 0
        st   r8, r2, 1
        addi r2, r2, 2
        addi r8, r6, 1
        st   r8, r2, 0
        st   r4, r2, 1
        addi r2, r2, 2
        jmp  pop
    done:
        halt";
    // Worst-case stack depth: 2 words per partition, bounded by 2n pairs.
    let mut m = Machine::new(
        assemble(src).expect("quicksort source assembles"),
        n * 5 + 8,
    );
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    for i in 0..n {
        m.mem_mut()[i] = (rng.next_u64() % 100_000) as i64;
    }
    m.set_reg(1, n as i64);
    m
}

/// Dense matrix multiply `C = A × B` of seeded `k × k` matrices.
///
/// Branch mix: a perfectly regular triple loop nest — the most predictable
/// control flow a program can have (every branch is a counted loop).
///
/// # Panics
///
/// Panics if `k == 0` or `k > 36`.
pub fn matmul(k: usize, seed: u64) -> Machine {
    assert!((1..=36).contains(&k), "k must be in 1..=36");
    // Memory: A at 0, B at k*k, C at 2k*k. r1 = k.
    let src = "
        mul  r2, r1, r1         ; k*k
        li   r3, 0              ; i
    li_loop:
        bge  r3, r1, done
        li   r4, 0              ; j
    lj_loop:
        bge  r4, r1, li_next
        li   r5, 0              ; acc
        li   r6, 0              ; l
    lk_loop:
        bge  r6, r1, lk_done
        mul  r7, r3, r1
        add  r7, r7, r6         ; A index i*k+l
        ld   r8, r7, 0
        mul  r9, r6, r1
        add  r9, r9, r4
        add  r9, r9, r2         ; B index k*k + l*k+j
        ld   r10, r9, 0
        mul  r8, r8, r10
        add  r5, r5, r8
        addi r6, r6, 1
        jmp  lk_loop
    lk_done:
        mul  r7, r3, r1
        add  r7, r7, r4
        add  r7, r7, r2
        add  r7, r7, r2         ; C index 2k*k + i*k+j
        st   r5, r7, 0
        addi r4, r4, 1
        jmp  lj_loop
    li_next:
        addi r3, r3, 1
        jmp  li_loop
    done:
        halt";
    let mut m = Machine::new(assemble(src).expect("matmul source assembles"), 3 * k * k);
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    for i in 0..2 * k * k {
        m.mem_mut()[i] = (rng.next_u64() % 16) as i64;
    }
    m.set_reg(1, k as i64);
    m
}

/// Linear-probing hash-table inserts and lookups over seeded keys.
///
/// Branch mix: probe-loop branches whose trip count depends on table load —
/// increasingly unpredictable as the table fills.
///
/// # Panics
///
/// Panics if `table` is not a power of two in `8..=2048`, or `ops == 0`.
pub fn hash_probe(table: usize, ops: usize, seed: u64) -> Machine {
    assert!(
        (8..=2048).contains(&table) && table.is_power_of_two(),
        "table must be a power of two in 8..=2048"
    );
    assert!(ops >= 1, "ops must be positive");
    // Memory: [0..table) slots (0 = empty), [table..table+ops) keys.
    // r1 = table size, r2 = ops, r13 = table-1 mask.
    let src = "
        subi r13, r1, 1         ; mask
        li   r3, 0              ; op index
    next_op:
        bge  r3, r2, done
        add  r4, r1, r3
        ld   r5, r4, 0          ; key (nonzero)
        and  r6, r5, r13        ; slot = key & mask
    probe:
        ld   r7, r6, 0
        beq  r7, r0, insert     ; empty slot?
        beq  r7, r5, found      ; already present?
        addi r6, r6, 1
        and  r6, r6, r13        ; wrap
        jmp  probe
    insert:
        st   r5, r6, 0
    found:
        addi r3, r3, 1
        jmp  next_op
    done:
        halt";
    let mut m = Machine::new(
        assemble(src).expect("hash_probe source assembles"),
        table + ops,
    );
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    for i in 0..ops {
        // Nonzero keys; duplicates on purpose (lookup hits).
        m.mem_mut()[table + i] = 1 + (rng.next_u64() % (table as u64 / 2)) as i64;
    }
    m.set_reg(1, table as i64);
    m.set_reg(2, ops as i64);
    m
}

/// Runs every sample program with small inputs and concatenates their
/// traces — a convenient mixed "real control flow" trace for tests.
pub fn mixed_sample_trace(seed: u64) -> Vec<BranchRecord> {
    let mut out = Vec::new();
    let budget = 2_000_000;
    let mut machines = [
        bubble_sort(64, seed).with_code_base(0x1_0000),
        binary_search(256, 64, seed ^ 1).with_code_base(0x2_0000),
        string_match(512, 4, seed ^ 2).with_code_base(0x3_0000),
        collatz(60).with_code_base(0x4_0000),
        sieve(1000).with_code_base(0x5_0000),
        fsm(1000, seed ^ 3).with_code_base(0x6_0000),
        quicksort(200, seed ^ 4).with_code_base(0x7_0000),
        matmul(12, seed ^ 5).with_code_base(0x8_0000),
        hash_probe(128, 80, seed ^ 6).with_code_base(0x9_0000),
    ];
    for m in &mut machines {
        out.extend(m.run(budget).expect("sample programs terminate"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bubble_sort_sorts() {
        let mut m = bubble_sort(50, 7);
        m.run(10_000_000).unwrap();
        let mem = m.mem();
        assert!(mem.windows(2).all(|w| w[0] <= w[1]), "not sorted: {mem:?}");
    }

    #[test]
    fn binary_search_terminates_and_branches() {
        let mut m = binary_search(128, 32, 9);
        let t = m.run(1_000_000).unwrap();
        assert!(m.halted());
        assert!(t.len() > 32 * 3, "too few branches: {}", t.len());
    }

    #[test]
    fn string_match_counts_matches() {
        let mut m = string_match(200, 2, 11);
        m.run(1_000_000).unwrap();
        // r15 holds the match count; small alphabet makes matches likely.
        assert!(m.reg(15) >= 0);
        assert!(m.halted());
    }

    #[test]
    fn collatz_total_steps_known_value() {
        // Trajectory lengths for 1..=6: 0+1+7+2+5+8 = 23
        let mut m = collatz(6);
        m.run(100_000).unwrap();
        assert_eq!(m.reg(15), 23);
    }

    #[test]
    fn sieve_marks_composites_only() {
        let mut m = sieve(100);
        m.run(1_000_000).unwrap();
        let mem = m.mem();
        let primes: Vec<usize> = (2..=100).filter(|&i| mem[i] == 0).collect();
        assert_eq!(&primes[..8], &[2, 3, 5, 7, 11, 13, 17, 19]);
        assert_eq!(primes.len(), 25);
    }

    #[test]
    fn fsm_consumes_all_tokens() {
        let mut m = fsm(500, 3);
        let t = m.run(1_000_000).unwrap();
        assert!(m.halted());
        assert!(t.len() >= 500, "each token should produce branches");
    }

    #[test]
    fn mixed_trace_is_deterministic_and_multiprogram() {
        let a = mixed_sample_trace(1);
        let b = mixed_sample_trace(1);
        assert_eq!(a, b);
        let bases: std::collections::BTreeSet<u64> = a.iter().map(|r| r.pc >> 16).collect();
        assert!(
            bases.len() >= 9,
            "expected all nine programs, got {bases:?}"
        );
    }

    #[test]
    #[should_panic]
    fn bubble_sort_rejects_zero() {
        bubble_sort(0, 0);
    }

    #[test]
    fn quicksort_sorts() {
        let mut m = quicksort(300, 13);
        m.run(10_000_000).unwrap();
        let data = &m.mem()[..300];
        assert!(data.windows(2).all(|w| w[0] <= w[1]), "not sorted");
    }

    #[test]
    fn quicksort_matches_bubble_sort_result() {
        let mut q = quicksort(100, 21);
        q.run(10_000_000).unwrap();
        let mut b = bubble_sort(100, 21);
        b.run(10_000_000).unwrap();
        assert_eq!(&q.mem()[..100], &b.mem()[..100]);
    }

    #[test]
    fn matmul_matches_reference() {
        let k = 5;
        let mut m = matmul(k, 3);
        m.run(10_000_000).unwrap();
        let mem = m.mem();
        let (a, rest) = mem.split_at(k * k);
        let (b, c) = rest.split_at(k * k);
        for i in 0..k {
            for j in 0..k {
                let expected: i64 = (0..k).map(|l| a[i * k + l] * b[l * k + j]).sum();
                assert_eq!(c[i * k + j], expected, "C[{i}][{j}]");
            }
        }
    }

    #[test]
    fn hash_probe_inserts_all_distinct_keys() {
        let mut m = hash_probe(256, 100, 5);
        m.run(10_000_000).unwrap();
        // Every key from the input block must be present in the table.
        let (table, keys) = m.mem().split_at(256);
        for &k in keys {
            assert!(table.contains(&k), "key {k} missing from table");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn hash_probe_rejects_non_power_of_two() {
        hash_probe(100, 10, 0);
    }
}
