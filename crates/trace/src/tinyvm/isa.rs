//! Instruction set of the tiny VM.
//!
//! A deliberately small register machine: 16 general-purpose 64-bit
//! registers, a flat word-addressed data memory, and PC-relative-free
//! absolute branch targets (instruction indices). Conditional branches are
//! the only instructions that emit [`crate::BranchRecord`]s when executed.

use std::fmt;

/// A register index `r0`–`r15`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// Number of registers in the machine.
    pub const COUNT: usize = 16;

    /// Creates a register reference.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`.
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < Self::COUNT,
            "register index {index} out of range"
        );
        Reg(index)
    }

    /// The register's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Comparison condition of a conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if signed less-than.
    Lt,
    /// Branch if signed greater-or-equal.
    Ge,
}

impl Cond {
    /// Evaluates the condition on two operand values.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
        }
    }

    /// The assembler mnemonic (`beq`, `bne`, `blt`, `bge`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "beq",
            Cond::Ne => "bne",
            Cond::Lt => "blt",
            Cond::Ge => "bge",
        }
    }
}

/// Binary ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (by `b & 63`).
    Shl,
    /// Arithmetic shift right (by `b & 63`).
    Shr,
    /// Signed division; division by zero yields 0.
    Div,
    /// Signed remainder; remainder by zero yields 0.
    Rem,
}

impl AluOp {
    /// Applies the operation.
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
            AluOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
        }
    }

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
        }
    }
}

/// One instruction. Branch targets are absolute instruction indices
/// (resolved from labels by the assembler).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `li rd, imm` — load immediate.
    Li(Reg, i64),
    /// `mov rd, rs`.
    Mov(Reg, Reg),
    /// `op rd, ra, rb` — register ALU operation.
    Alu(AluOp, Reg, Reg, Reg),
    /// `opi rd, ra, imm` — immediate ALU operation.
    AluI(AluOp, Reg, Reg, i64),
    /// `ld rd, ra, off` — `rd = mem[ra + off]`.
    Ld(Reg, Reg, i64),
    /// `st rs, ra, off` — `mem[ra + off] = rs`.
    St(Reg, Reg, i64),
    /// Conditional branch: `bCC ra, rb, target`.
    Branch(Cond, Reg, Reg, usize),
    /// `jmp target` — unconditional jump.
    Jmp(usize),
    /// `halt` — stop execution.
    Halt,
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Li(rd, imm) => write!(f, "li {rd}, {imm}"),
            Instr::Mov(rd, rs) => write!(f, "mov {rd}, {rs}"),
            Instr::Alu(op, rd, ra, rb) => write!(f, "{} {rd}, {ra}, {rb}", op.mnemonic()),
            Instr::AluI(op, rd, ra, imm) => write!(f, "{}i {rd}, {ra}, {imm}", op.mnemonic()),
            Instr::Ld(rd, ra, off) => write!(f, "ld {rd}, {ra}, {off}"),
            Instr::St(rs, ra, off) => write!(f, "st {rs}, {ra}, {off}"),
            Instr::Branch(c, ra, rb, t) => write!(f, "{} {ra}, {rb}, @{t}", c.mnemonic()),
            Instr::Jmp(t) => write!(f, "jmp @{t}"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_bounds() {
        assert_eq!(Reg::new(0).index(), 0);
        assert_eq!(Reg::new(15).index(), 15);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_out_of_range_panics() {
        Reg::new(16);
    }

    #[test]
    fn cond_eval() {
        assert!(Cond::Eq.eval(3, 3));
        assert!(!Cond::Eq.eval(3, 4));
        assert!(Cond::Ne.eval(3, 4));
        assert!(Cond::Lt.eval(-1, 0));
        assert!(Cond::Ge.eval(0, 0));
        assert!(!Cond::Ge.eval(-5, 0));
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(i64::MAX, 1), i64::MIN); // wrapping
        assert_eq!(AluOp::Sub.apply(3, 5), -2);
        assert_eq!(AluOp::Mul.apply(7, 6), 42);
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Shl.apply(1, 4), 16);
        assert_eq!(AluOp::Shr.apply(-8, 1), -4); // arithmetic
        assert_eq!(AluOp::Div.apply(7, 2), 3);
        assert_eq!(AluOp::Div.apply(7, 0), 0); // defined
        assert_eq!(AluOp::Rem.apply(7, 3), 1);
        assert_eq!(AluOp::Rem.apply(7, 0), 0);
    }

    #[test]
    fn shift_amount_masked() {
        assert_eq!(AluOp::Shl.apply(1, 64), 1);
        assert_eq!(AluOp::Shl.apply(1, 65), 2);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Instr::Li(Reg::new(3), -7).to_string(), "li r3, -7");
        assert_eq!(
            Instr::Branch(Cond::Lt, Reg::new(1), Reg::new(2), 9).to_string(),
            "blt r1, r2, @9"
        );
        assert_eq!(Instr::Halt.to_string(), "halt");
    }
}
