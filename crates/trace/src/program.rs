//! Synthetic programs: static branches arranged in regions, executed by a
//! Markov region walker.
//!
//! A [`Program`] models the control-flow *shape* of a workload without
//! simulating computation: static branches (each with a
//! [`Behavior`]) are grouped into *regions*
//! (think functions or hot code clusters). Executing a region emits the
//! outcomes of its branch slots in order, expanding loop slots into their
//! taken/taken/.../not-taken sequence; then the walker transitions to a
//! successor region according to a weighted Markov chain. Region locality
//! plus loop expansion reproduces the PC-locality and dynamic-frequency
//! structure that drives predictor and confidence-table behaviour.
//!
//! # Examples
//!
//! ```
//! use cira_trace::program::{ProgramBuilder, Slot};
//! use cira_trace::model::{Behavior, TripCount};
//!
//! let mut b = ProgramBuilder::new(0x1000);
//! let cond = b.branch(Behavior::Bias { p_taken: 0.9 });
//! let lp = b.branch(Behavior::Loop(TripCount::Fixed(3)));
//! let r = b.region(vec![Slot::Loop { branch: lp, body: vec![Slot::Branch(cond)] }]);
//! b.transition(r, r, 1.0);
//! let program = b.build().unwrap();
//! let records: Vec<_> = program.walker(42).take(100).collect();
//! assert_eq!(records.len(), 100);
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use crate::model::{Behavior, BehaviorState};
use crate::record::{BranchRecord, TraceSource};
use crate::rng::Xoshiro256StarStar;

/// Identifier of a static branch within a [`Program`].
pub type BranchId = usize;

/// Identifier of a region within a [`Program`].
pub type RegionId = usize;

/// One element of a region's body.
#[derive(Debug, Clone, PartialEq)]
pub enum Slot {
    /// Execute a non-loop branch once.
    Branch(BranchId),
    /// Execute a loop: per iteration emit `body`, then the loop branch
    /// taken; on exit emit the loop branch not-taken.
    Loop {
        /// The loop-closing branch; must have [`Behavior::Loop`].
        branch: BranchId,
        /// Slots executed once per iteration (may nest further loops).
        body: Vec<Slot>,
    },
}

/// Errors reported by [`ProgramBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildProgramError {
    /// The program has no regions.
    NoRegions,
    /// A region has an empty slot list.
    EmptyRegion(RegionId),
    /// A slot references a branch id that was never declared.
    UnknownBranch(BranchId),
    /// A `Slot::Loop` references a branch whose behaviour is not `Loop`.
    NotALoopBranch(BranchId),
    /// A `Slot::Branch` references a branch whose behaviour is `Loop`.
    LoopUsedAsPlainBranch(BranchId),
    /// A region has no outgoing transition weight.
    NoTransitions(RegionId),
    /// A transition weight is negative or non-finite.
    BadWeight(RegionId, RegionId),
}

impl fmt::Display for BuildProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildProgramError::NoRegions => write!(f, "program has no regions"),
            BuildProgramError::EmptyRegion(r) => write!(f, "region {r} has no slots"),
            BuildProgramError::UnknownBranch(b) => write!(f, "unknown branch id {b}"),
            BuildProgramError::NotALoopBranch(b) => {
                write!(f, "branch {b} used in a loop slot but is not a loop branch")
            }
            BuildProgramError::LoopUsedAsPlainBranch(b) => {
                write!(f, "loop branch {b} used as a plain branch slot")
            }
            BuildProgramError::NoTransitions(r) => {
                write!(f, "region {r} has no outgoing transitions")
            }
            BuildProgramError::BadWeight(a, b) => {
                write!(
                    f,
                    "transition {a}->{b} has a non-positive or non-finite weight"
                )
            }
        }
    }
}

impl std::error::Error for BuildProgramError {}

#[derive(Debug, Clone)]
struct BranchDecl {
    pc: u64,
    behavior: Behavior,
}

#[derive(Debug, Clone)]
struct Region {
    slots: Vec<Slot>,
    /// Outgoing transitions as (target, weight) pairs.
    succs: Vec<(RegionId, f64)>,
}

/// Incrementally constructs a [`Program`].
///
/// Declare branches with [`branch`](Self::branch), group them into regions
/// with [`region`](Self::region), wire regions with
/// [`transition`](Self::transition), and finish with
/// [`build`](Self::build).
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    base_pc: u64,
    branches: Vec<BranchDecl>,
    regions: Vec<Region>,
    start: RegionId,
}

impl ProgramBuilder {
    /// Starts a program whose branch PCs are allocated from `base_pc`
    /// upward in 4-byte steps.
    pub fn new(base_pc: u64) -> Self {
        Self {
            base_pc,
            branches: Vec::new(),
            regions: Vec::new(),
            start: 0,
        }
    }

    /// Declares a static branch and returns its id. The branch's PC is
    /// `base_pc + 4 * id`.
    pub fn branch(&mut self, behavior: Behavior) -> BranchId {
        let id = self.branches.len();
        self.branches.push(BranchDecl {
            pc: self.base_pc + 4 * id as u64,
            behavior,
        });
        id
    }

    /// The PC that was (or will be) assigned to branch `id`.
    pub fn pc_of(&self, id: BranchId) -> u64 {
        self.base_pc + 4 * id as u64
    }

    /// Declares a region with the given slot list and returns its id.
    pub fn region(&mut self, slots: Vec<Slot>) -> RegionId {
        let id = self.regions.len();
        self.regions.push(Region {
            slots,
            succs: Vec::new(),
        });
        id
    }

    /// Adds a Markov transition edge `from -> to` with the given weight.
    ///
    /// Weights are relative; they need not sum to one.
    pub fn transition(&mut self, from: RegionId, to: RegionId, weight: f64) -> &mut Self {
        self.regions[from].succs.push((to, weight));
        self
    }

    /// Sets the region the walker starts in (defaults to region 0).
    pub fn start_region(&mut self, region: RegionId) -> &mut Self {
        self.start = region;
        self
    }

    /// Number of branches declared so far.
    pub fn branch_count(&self) -> usize {
        self.branches.len()
    }

    /// Validates and freezes the program.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildProgramError`] if the program is empty, references
    /// undeclared branches, mixes loop/non-loop branches into the wrong slot
    /// kind, or leaves a region without outgoing transitions.
    pub fn build(self) -> Result<Program, BuildProgramError> {
        if self.regions.is_empty() {
            return Err(BuildProgramError::NoRegions);
        }
        for (rid, region) in self.regions.iter().enumerate() {
            if region.slots.is_empty() {
                return Err(BuildProgramError::EmptyRegion(rid));
            }
            self.check_slots(&region.slots)?;
            if region.succs.is_empty() {
                return Err(BuildProgramError::NoTransitions(rid));
            }
            for &(to, w) in &region.succs {
                if w.is_nan() || w <= 0.0 || !w.is_finite() {
                    return Err(BuildProgramError::BadWeight(rid, to));
                }
            }
        }
        Ok(Program {
            inner: Arc::new(ProgramInner {
                branches: self.branches,
                regions: self.regions,
                start: self.start,
            }),
        })
    }

    fn check_slots(&self, slots: &[Slot]) -> Result<(), BuildProgramError> {
        for slot in slots {
            match slot {
                Slot::Branch(b) => {
                    let decl = self
                        .branches
                        .get(*b)
                        .ok_or(BuildProgramError::UnknownBranch(*b))?;
                    if matches!(decl.behavior, Behavior::Loop(_)) {
                        return Err(BuildProgramError::LoopUsedAsPlainBranch(*b));
                    }
                }
                Slot::Loop { branch, body } => {
                    let decl = self
                        .branches
                        .get(*branch)
                        .ok_or(BuildProgramError::UnknownBranch(*branch))?;
                    if !matches!(decl.behavior, Behavior::Loop(_)) {
                        return Err(BuildProgramError::NotALoopBranch(*branch));
                    }
                    self.check_slots(body)?;
                }
            }
        }
        Ok(())
    }
}

#[derive(Debug)]
struct ProgramInner {
    branches: Vec<BranchDecl>,
    regions: Vec<Region>,
    start: RegionId,
}

/// A validated, immutable synthetic program.
///
/// Cheap to clone (the definition is shared); create walkers with
/// [`Program::walker`].
#[derive(Debug, Clone)]
pub struct Program {
    inner: Arc<ProgramInner>,
}

impl Program {
    /// Number of static branches.
    pub fn static_branches(&self) -> usize {
        self.inner.branches.len()
    }

    /// Number of regions.
    pub fn regions(&self) -> usize {
        self.inner.regions.len()
    }

    /// The PC of branch `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn pc_of(&self, id: BranchId) -> u64 {
        self.inner.branches[id].pc
    }

    /// Creates a deterministic walker over this program.
    ///
    /// The same `(program, seed)` pair always generates the same record
    /// stream.
    pub fn walker(&self, seed: u64) -> Walker {
        Walker::new(self.clone(), seed)
    }
}

/// Iterates the branch records produced by executing a [`Program`].
///
/// `Walker` implements [`TraceSource`]; [`reset`](TraceSource::reset)
/// rewinds to the exact initial state.
#[derive(Debug, Clone)]
pub struct Walker {
    program: Program,
    seed: u64,
    rng: Xoshiro256StarStar,
    region: RegionId,
    states: Vec<BehaviorState>,
    /// Most recent global outcomes, bit 0 = most recent, 1 = taken.
    global_history: u64,
    queue: VecDeque<BranchRecord>,
}

impl Walker {
    fn new(program: Program, seed: u64) -> Self {
        let n = program.inner.branches.len();
        let start = program.inner.start;
        Self {
            program,
            seed,
            rng: Xoshiro256StarStar::seed_from_u64(seed),
            region: start,
            states: vec![BehaviorState::new(); n],
            global_history: 0,
            queue: VecDeque::new(),
        }
    }

    /// The seed this walker was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn emit(&mut self, branch: BranchId, taken: bool) {
        let pc = self.program.inner.branches[branch].pc;
        self.queue.push_back(BranchRecord::new(pc, taken));
        self.global_history = (self.global_history << 1) | taken as u64;
    }

    fn exec_slots(&mut self, slots: &[Slot]) {
        for slot in slots {
            match slot {
                Slot::Branch(b) => {
                    // Clone the behaviour handle out to satisfy borrowck; it
                    // is a small enum and regions execute at coarse grain.
                    let behavior = self.program.inner.branches[*b].behavior.clone();
                    let taken =
                        self.states[*b].evaluate(&behavior, self.global_history, &mut self.rng);
                    self.emit(*b, taken);
                }
                Slot::Loop { branch, body } => {
                    let trip = match &self.program.inner.branches[*branch].behavior {
                        Behavior::Loop(t) => t.sample(&mut self.rng),
                        _ => unreachable!("validated at build time"),
                    };
                    let body = body.clone();
                    for _ in 0..trip {
                        self.exec_slots(&body);
                        self.emit(*branch, true);
                    }
                    self.exec_slots(&body);
                    self.emit(*branch, false);
                }
            }
        }
    }

    fn advance_region(&mut self) {
        let succs = &self.program.inner.regions[self.region].succs;
        let weights: Vec<f64> = succs.iter().map(|&(_, w)| w).collect();
        let choice = self.rng.pick_weighted(&weights);
        self.region = succs[choice].0;
    }

    fn refill(&mut self) {
        let slots = self.program.inner.regions[self.region].slots.clone();
        self.exec_slots(&slots);
        self.advance_region();
    }
}

impl Iterator for Walker {
    type Item = BranchRecord;

    fn next(&mut self) -> Option<BranchRecord> {
        while self.queue.is_empty() {
            self.refill();
        }
        self.queue.pop_front()
    }
}

impl TraceSource for Walker {
    fn reset(&mut self) {
        *self = Walker::new(self.program.clone(), self.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TripCount;

    fn simple_program() -> Program {
        let mut b = ProgramBuilder::new(0x4000);
        let bias = b.branch(Behavior::Bias { p_taken: 0.7 });
        let lp = b.branch(Behavior::Loop(TripCount::Fixed(2)));
        let r0 = b.region(vec![Slot::Branch(bias)]);
        let r1 = b.region(vec![Slot::Loop {
            branch: lp,
            body: vec![Slot::Branch(bias)],
        }]);
        b.transition(r0, r1, 1.0);
        b.transition(r1, r0, 1.0);
        b.build().unwrap()
    }

    #[test]
    fn builder_assigns_pcs() {
        let mut b = ProgramBuilder::new(0x100);
        let x = b.branch(Behavior::Bias { p_taken: 0.5 });
        let y = b.branch(Behavior::Bias { p_taken: 0.5 });
        assert_eq!(b.pc_of(x), 0x100);
        assert_eq!(b.pc_of(y), 0x104);
        assert_eq!(b.branch_count(), 2);
    }

    #[test]
    fn build_rejects_no_regions() {
        let b = ProgramBuilder::new(0);
        assert_eq!(b.build().unwrap_err(), BuildProgramError::NoRegions);
    }

    #[test]
    fn build_rejects_empty_region() {
        let mut b = ProgramBuilder::new(0);
        let r = b.region(vec![]);
        b.transition(r, r, 1.0);
        assert_eq!(b.build().unwrap_err(), BuildProgramError::EmptyRegion(0));
    }

    #[test]
    fn build_rejects_unknown_branch() {
        let mut b = ProgramBuilder::new(0);
        let r = b.region(vec![Slot::Branch(5)]);
        b.transition(r, r, 1.0);
        assert_eq!(b.build().unwrap_err(), BuildProgramError::UnknownBranch(5));
    }

    #[test]
    fn build_rejects_loop_branch_in_plain_slot() {
        let mut b = ProgramBuilder::new(0);
        let lp = b.branch(Behavior::Loop(TripCount::Fixed(1)));
        let r = b.region(vec![Slot::Branch(lp)]);
        b.transition(r, r, 1.0);
        assert_eq!(
            b.build().unwrap_err(),
            BuildProgramError::LoopUsedAsPlainBranch(lp)
        );
    }

    #[test]
    fn build_rejects_plain_branch_in_loop_slot() {
        let mut b = ProgramBuilder::new(0);
        let x = b.branch(Behavior::Bias { p_taken: 0.5 });
        let r = b.region(vec![Slot::Loop {
            branch: x,
            body: vec![],
        }]);
        b.transition(r, r, 1.0);
        assert_eq!(b.build().unwrap_err(), BuildProgramError::NotALoopBranch(x));
    }

    #[test]
    fn build_rejects_missing_transitions() {
        let mut b = ProgramBuilder::new(0);
        let x = b.branch(Behavior::Bias { p_taken: 0.5 });
        b.region(vec![Slot::Branch(x)]);
        assert_eq!(b.build().unwrap_err(), BuildProgramError::NoTransitions(0));
    }

    #[test]
    fn build_rejects_bad_weight() {
        let mut b = ProgramBuilder::new(0);
        let x = b.branch(Behavior::Bias { p_taken: 0.5 });
        let r = b.region(vec![Slot::Branch(x)]);
        b.transition(r, r, -1.0);
        assert_eq!(b.build().unwrap_err(), BuildProgramError::BadWeight(r, r));
    }

    #[test]
    fn walker_is_deterministic() {
        let p = simple_program();
        let a: Vec<_> = p.walker(9).take(500).collect();
        let b: Vec<_> = p.walker(9).take(500).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn walker_reset_replays() {
        let p = simple_program();
        let mut w = p.walker(9);
        let a: Vec<_> = w.by_ref().take(100).collect();
        w.reset();
        let b: Vec<_> = w.take(100).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let p = simple_program();
        let a: Vec<_> = p.walker(1).take(200).collect();
        let b: Vec<_> = p.walker(2).take(200).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn loop_expansion_shape() {
        // A lone fixed loop with a single-branch body, self-looping region.
        let mut b = ProgramBuilder::new(0);
        let lp = b.branch(Behavior::Loop(TripCount::Fixed(2)));
        let r = b.region(vec![Slot::Loop {
            branch: lp,
            body: vec![],
        }]);
        b.transition(r, r, 1.0);
        let p = b.build().unwrap();
        let recs: Vec<_> = p.walker(0).take(6).collect();
        let outcomes: Vec<bool> = recs.iter().map(|r| r.taken).collect();
        // trip=2: taken, taken, not-taken; repeated.
        assert_eq!(outcomes, vec![true, true, false, true, true, false]);
    }

    #[test]
    fn pcs_match_declarations() {
        let p = simple_program();
        assert_eq!(p.pc_of(0), 0x4000);
        assert_eq!(p.pc_of(1), 0x4004);
        let pcs: std::collections::BTreeSet<u64> = p.walker(3).take(1000).map(|r| r.pc).collect();
        assert!(pcs.contains(&0x4000) && pcs.contains(&0x4004));
        assert_eq!(pcs.len(), 2);
    }

    #[test]
    fn nested_loops_execute() {
        let mut b = ProgramBuilder::new(0);
        let inner = b.branch(Behavior::Loop(TripCount::Fixed(1)));
        let outer = b.branch(Behavior::Loop(TripCount::Fixed(1)));
        let r = b.region(vec![Slot::Loop {
            branch: outer,
            body: vec![Slot::Loop {
                branch: inner,
                body: vec![],
            }],
        }]);
        b.transition(r, r, 1.0);
        let p = b.build().unwrap();
        // outer trip 1: [inner: T,N] T [inner: T,N] N => 6 records per region
        let recs: Vec<_> = p.walker(0).take(6).collect();
        let outcomes: Vec<bool> = recs.iter().map(|r| r.taken).collect();
        assert_eq!(outcomes, vec![true, false, true, true, false, false]);
    }

    #[test]
    fn start_region_respected() {
        let mut b = ProgramBuilder::new(0);
        let x = b.branch(Behavior::Pattern { bits: vec![true] });
        let y = b.branch(Behavior::Pattern { bits: vec![false] });
        let r0 = b.region(vec![Slot::Branch(x)]);
        let r1 = b.region(vec![Slot::Branch(y)]);
        b.transition(r0, r0, 1.0);
        b.transition(r1, r1, 1.0);
        b.start_region(r1);
        let p = b.build().unwrap();
        let first = p.walker(0).next().unwrap();
        assert_eq!(first.pc, p.pc_of(y));
    }
}
