//! Confidence-driven hybrid predictor selection (application 3 of the
//! paper): compare a gshare+bimodal hybrid driven by the classic McFarling
//! chooser against one driven by explicit per-component confidence tables.
//!
//! Run with: `cargo run --release --example hybrid_selection`

use cira::apps::ConfidenceSelector;
use cira::prelude::*;

fn main() {
    let suite = ibs_like_suite();
    let n = 500_000usize;
    println!(
        "{:<12} {:>9} {:>9} {:>10} {:>12}",
        "benchmark", "gshare", "bimodal", "mcfarling", "conf-select"
    );
    let mut sums = [0.0f64; 4];
    for bench in &suite {
        let g = run_predictor(bench.walker().take(n), &mut Gshare::new(12, 12));
        let b = run_predictor(bench.walker().take(n), &mut Bimodal::new(12));
        let h = run_predictor(
            bench.walker().take(n),
            &mut Hybrid::new(Gshare::new(12, 12), Bimodal::new(12), 12),
        );
        let c = run_predictor(
            bench.walker().take(n),
            &mut ConfidenceSelector::new(Gshare::new(12, 12), Bimodal::new(12), 12),
        );
        println!(
            "{:<12} {:>8.2}% {:>8.2}% {:>9.2}% {:>11.2}%",
            bench.name(),
            100.0 * g.miss_rate(),
            100.0 * b.miss_rate(),
            100.0 * h.miss_rate(),
            100.0 * c.miss_rate()
        );
        for (s, r) in sums.iter_mut().zip([g, b, h, c]) {
            *s += r.miss_rate();
        }
    }
    let n_b = suite.len() as f64;
    println!(
        "{:<12} {:>8.2}% {:>8.2}% {:>9.2}% {:>11.2}%",
        "average",
        100.0 * sums[0] / n_b,
        100.0 * sums[1] / n_b,
        100.0 * sums[2] / n_b,
        100.0 * sums[3] / n_b
    );
    println!();
    println!(
        "paper (§6): \"we are optimistic that work on branch confidence will lead to a\n\
         systematic way of developing near-optimal selectors\""
    );
}
