//! Organic branch traces from the tiny VM: assemble a real program, run
//! it, and feed its conditional branches through the predictor +
//! confidence stack. Also demonstrates the binary trace codec.
//!
//! Run with: `cargo run --release --example tinyvm_traces`

use cira::prelude::*;
use cira::trace::codec;
use cira::trace::tinyvm::{assemble, programs, Machine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Hand-written assembly: sum of squares with an early-exit guard.
    let source = "
        ; r1 = limit, r2 = i, r3 = acc
        li   r1, 200
        li   r2, 0
        li   r3, 0
    loop:
        mul  r4, r2, r2
        add  r3, r3, r4
        addi r2, r2, 1
        blt  r2, r1, loop
        halt";
    let mut machine = Machine::new(assemble(source)?, 0);
    let trace = machine.run(1_000_000)?;
    println!(
        "hand-written loop: {} branch records, accumulator = {}",
        trace.len(),
        machine.reg(3)
    );

    // 2. The bundled sample programs produce a mixed organic trace.
    let mixed = programs::mixed_sample_trace(7);
    let stats: TraceStats = mixed.iter().copied().collect();
    println!(
        "mixed sample programs: {} records, {} static branches, {:.1}% taken",
        stats.dynamic_branches(),
        stats.static_branches(),
        100.0 * stats.taken_rate()
    );

    // 3. Round-trip through the compact binary codec.
    let mut encoded = Vec::new();
    codec::write_trace(&mut encoded, mixed.iter().copied())?;
    let decoded = codec::read_trace(&encoded[..])?;
    assert_eq!(decoded, mixed);
    println!(
        "codec: {} records -> {} bytes ({:.2} bytes/record)",
        mixed.len(),
        encoded.len(),
        encoded.len() as f64 / mixed.len() as f64
    );

    // 4. Predict + estimate confidence over the organic trace.
    let mut predictor = Gshare::new(12, 12);
    let mut mechanism = ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(12));
    let stats = collect_mechanism_buckets(decoded, &mut predictor, &mut mechanism);
    let curve = CoverageCurve::from_buckets(&stats);
    println!(
        "tiny-VM workload: {:.2}% mispredicted; lowest-confidence 20% of branches \
         hold {:.1}% of mispredictions",
        100.0 * stats.miss_rate(),
        curve.coverage_at(20.0)
    );
    Ok(())
}
