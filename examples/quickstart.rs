//! Quickstart: pair a gshare predictor with the paper's recommended
//! confidence mechanism (a resetting-counter table indexed by PC⊕BHR) and
//! see how well the low-confidence set concentrates mispredictions.
//!
//! Run with: `cargo run --release --example quickstart`

use cira::prelude::*;

fn main() {
    // A workload from the IBS-like synthetic suite.
    let suite = ibs_like_suite();
    let bench = &suite[0]; // gcc: the hardest workload
    println!("workload: {}", bench.name());

    // The paper's large configuration: 2^16-counter gshare, 16-bit history.
    let mut predictor = Gshare::paper_large();

    // The paper's practical confidence design (§5.1): resetting counters
    // 0..=16 embedded in a 2^16-entry table, indexed like the predictor.
    let mut mechanism = ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(16));

    // Drive 500k branches through both, bucketing by counter value.
    let stats =
        collect_mechanism_buckets(bench.walker().take(500_000), &mut predictor, &mut mechanism);
    println!(
        "misprediction rate: {:.2}%  ({} distinct counter values observed)",
        100.0 * stats.miss_rate(),
        stats.distinct_keys()
    );

    // Table-1 style view: per-counter-value statistics.
    let table = CounterTable::from_buckets(&stats, 16);
    println!("\n{table}");

    // Coverage curve: how many mispredictions live in the low-counter set?
    let curve = CoverageCurve::from_buckets(&stats);
    for budget in [5.0, 10.0, 20.0, 30.0] {
        println!(
            "lowest-confidence {budget:>4.0}% of branches contain {:5.1}% of mispredictions",
            curve.coverage_at(budget)
        );
    }

    // The same mechanism as an online high/low estimator: low confidence
    // whenever the counter is not saturated.
    let mut predictor = Gshare::paper_large();
    let mut estimator = ThresholdEstimator::new(
        ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(16)),
        LowRule::KeyBelow(16),
    );
    let counts = run_estimator(bench.walker().take(500_000), &mut predictor, &mut estimator);
    println!("\nonline estimator: {counts}");
}
