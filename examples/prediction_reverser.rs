//! The branch prediction reverser (application 4 of the paper): profile
//! which confidence-table keys see >50% mispredictions, then invert those
//! predictions and measure the net accuracy effect.
//!
//! The paper is deliberately cautious about this application — with a good
//! predictor, few buckets cross 50% — and this example shows exactly that:
//! the reverser finds more to do under the small 4K predictor than under
//! the large one.
//!
//! Run with: `cargo run --release --example prediction_reverser`

use cira::apps::reverser::{calibrate_reversal_keys, simulate_reverser};
use cira::core::one_level::OneLevelCir;
use cira::prelude::*;

fn reverse_on<PF>(name: &str, make_predictor: PF, bits: u32)
where
    PF: Fn() -> Gshare,
{
    let suite = ibs_like_suite();
    println!("--- {name} ---");
    println!(
        "{:<12} {:>9} {:>10} {:>10} {:>10} {:>8}",
        "benchmark", "base", "reversed", "reversals", "good/bad", "net"
    );
    for bench in &suite {
        // Profiling pass: full 16-bit CIR patterns give the reverser the
        // finest grain to find >50% keys.
        let mut predictor = make_predictor();
        let mut mech = OneLevelCir::paper_default(IndexSpec::pc_xor_bhr(bits));
        let (keys, _stats) =
            calibrate_reversal_keys(bench.walker().take(300_000), &mut predictor, &mut mech, 0.5);
        // Measurement pass on fresh structures (same trace: the paper's
        // "perfect profiling" convention).
        let mut predictor = make_predictor();
        let mut mech = OneLevelCir::paper_default(IndexSpec::pc_xor_bhr(bits));
        let report = simulate_reverser(
            bench.walker().take(300_000),
            &mut predictor,
            &mut mech,
            &keys,
        );
        println!(
            "{:<12} {:>8.2}% {:>9.2}% {:>10} {:>5}/{:<5} {:>7}",
            bench.name(),
            100.0 * report.base_rate(),
            100.0 * report.reversed_rate(),
            report.reversals,
            report.good_reversals,
            report.bad_reversals,
            report.net_gain()
        );
    }
    println!();
}

fn main() {
    reverse_on("large predictor (64K gshare)", Gshare::paper_large, 16);
    reverse_on("small predictor (4K gshare)", Gshare::paper_small, 12);
    println!(
        "paper (§6): the reverser \"looks promising\" but must beat simply building\n\
         a more powerful predictor — note how much more it finds at 4K than at 64K."
    );
}
