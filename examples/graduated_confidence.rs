//! The paper's deferred generalizations, implemented as extensions:
//!
//! 1. **Multi-level confidence** (§1: "one could divide the branches into
//!    multiple sets with a range of confidence levels") — a four-class
//!    partition from a resetting-counter table.
//! 2. **Adaptive thresholds** (§1 fixes the reduction logic at design
//!    time; Fig. 9 shows the resulting set sizes vary widely by program) —
//!    a feedback controller holding the low-confidence fraction at a
//!    target on every benchmark.
//!
//! Run with: `cargo run --release --example graduated_confidence`

use cira::core::adaptive::AdaptiveEstimator;
use cira::core::multi_level::MultiLevelEstimator;
use cira::prelude::*;
use cira_analysis::runner::{run_estimator, run_multi_level};

fn main() {
    let suite = ibs_like_suite();
    let len = 400_000;

    println!("== multi-level confidence: classes at counter thresholds [1, 4, 16] ==\n");
    println!(
        "{:<12} {:>8} | {:>21} {:>21} {:>21} {:>21}",
        "benchmark", "miss%", "class0 (refs%, miss%)", "class1", "class2", "class3"
    );
    for bench in suite.iter().take(5) {
        let mut predictor = Gshare::paper_large();
        let mech = ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(16));
        let mut est = MultiLevelEstimator::new(mech, vec![1, 4, 16]).expect("valid thresholds");
        let stats = run_multi_level(bench.walker().take(len), &mut predictor, &mut est);
        print!(
            "{:<12} {:>7.2}% |",
            bench.name(),
            100.0 * stats.total_mispredicts() as f64 / stats.total_refs() as f64
        );
        for c in 0..stats.classes() {
            print!(
                "        ({:>4.1}%, {:>4.1}%)",
                100.0 * stats.refs(c) as f64 / stats.total_refs() as f64,
                100.0 * stats.miss_rate(c)
            );
        }
        println!();
    }
    println!("\n(classes are ordered: class 0 least confident — its miss rate is highest)\n");

    println!("== adaptive threshold: hold the low-confidence set at 20% on every program ==\n");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "benchmark", "fixed t=16", "fixed cov", "adaptive", "adapt cov"
    );
    for bench in &suite {
        let mut p1 = Gshare::paper_large();
        let mut fixed = ThresholdEstimator::new(
            ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(16)),
            LowRule::KeyBelow(16),
        );
        let f = run_estimator(bench.walker().take(len), &mut p1, &mut fixed);

        let mut p2 = Gshare::paper_large();
        let mut adaptive = AdaptiveEstimator::new(
            ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(16)),
            0.2,
            17,
            4096,
        );
        let a = run_estimator(bench.walker().take(len), &mut p2, &mut adaptive);
        println!(
            "{:<12} {:>11.1}% {:>11.1}% {:>11.1}% {:>11.1}%",
            bench.name(),
            100.0 * f.low_fraction(),
            100.0 * f.mispredict_coverage(),
            100.0 * a.low_fraction(),
            100.0 * a.mispredict_coverage()
        );
    }
    println!(
        "\nfixed thresholds give each program a different set size; the adaptive\n\
         controller pins the size near 20% and takes whatever coverage that buys."
    );
}
