//! Confidence-guided SMT instruction fetch (application 2 of the paper):
//! four threads share a 4-wide fetch unit; compare round-robin, ICOUNT-like,
//! and confidence-gated fetch policies on wasted wrong-path fetches.
//!
//! Run with: `cargo run --release --example smt_fetch_gating`

use cira::apps::smt_fetch::{simulate_smt_fetch, FetchPolicy, SmtConfig, ThreadSpec};
use cira::prelude::*;

fn make_threads(suite: &[Benchmark]) -> Vec<ThreadSpec<'static>> {
    // Four dissimilar workloads sharing the core.
    ["gcc", "jpeg", "sdet", "verilog"]
        .iter()
        .map(|name| {
            let bench = suite
                .iter()
                .find(|b| b.name() == *name)
                .expect("suite benchmark")
                .clone();
            ThreadSpec {
                trace: Box::new(bench.walker().take(10_000_000)),
                predictor: Box::new(Gshare::paper_large()),
                estimator: Box::new(ThresholdEstimator::new(
                    ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(16)),
                    LowRule::KeyBelow(8),
                )),
            }
        })
        .collect()
}

fn main() {
    let suite = ibs_like_suite();
    let config = SmtConfig {
        fetch_width: 4,
        resolve_delay: 6,
        cycles: 60_000,
    };
    println!(
        "SMT fetch model: 4 threads, width {}, resolve delay {} blocks, {} cycles",
        config.fetch_width, config.resolve_delay, config.cycles
    );
    println!();
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>8}",
        "policy", "fetched", "wasted", "useful/cyc", "useful%"
    );
    for (name, policy) in [
        ("round-robin", FetchPolicy::RoundRobin),
        ("fewest-outstanding", FetchPolicy::FewestOutstanding),
        ("confidence-gated", FetchPolicy::ConfidenceGated),
    ] {
        let report = simulate_smt_fetch(make_threads(&suite), policy, config);
        println!(
            "{:<22} {:>10} {:>10} {:>10.2} {:>7.1}%",
            name,
            report.fetched_blocks,
            report.wasted_blocks,
            report.useful_throughput(config.cycles),
            100.0 * report.useful_fraction()
        );
    }
    println!();
    println!("paper (§1): prioritizing high-confidence threads reduces wasted fetches");
}
