//! Selective dual-path execution (application 1 of the paper): sweep the
//! fork threshold and watch the trade-off between fork rate, misprediction
//! coverage, and net speedup.
//!
//! Run with: `cargo run --release --example dual_path_machine`

use cira::apps::dual_path::{simulate_dual_path, DualPathConfig};
use cira::prelude::*;

fn main() {
    let suite = ibs_like_suite();
    let config = DualPathConfig::default();
    println!(
        "dual-path model: {} cycles/branch, {}-cycle flush, {}-cycle fork overhead, {} fork slot(s)",
        config.cycles_per_branch,
        config.mispredict_penalty,
        config.fork_overhead,
        config.max_live_forks
    );
    println!();
    println!(
        "{:<10} {:>9} {:>12} {:>12} {:>10} {:>9}",
        "threshold", "fork rate", "cover(1 slot)", "cover(8 slot)", "slot miss", "speedup"
    );

    // Threshold t: fork while the resetting counter is below t. t=0 never
    // forks; t=17 forks on every non-saturated *and* saturated entry.
    // The 8-slot column shows the mechanism's potential coverage when fork
    // resources are plentiful — the quantity the paper's §6 claim is about.
    for threshold in [0u64, 1, 2, 4, 8, 16] {
        let mut totals = (0.0f64, 0.0f64, 0u64, 0.0f64, 0.0f64, 0usize);
        for bench in &suite {
            let run = |slots: u32| {
                let mut predictor = Gshare::paper_large();
                let mut estimator = ThresholdEstimator::new(
                    ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(16)),
                    LowRule::KeyBelow(threshold),
                );
                simulate_dual_path(
                    bench.walker().take(300_000),
                    &mut predictor,
                    &mut estimator,
                    DualPathConfig {
                        max_live_forks: slots,
                        ..config
                    },
                )
            };
            let one = run(1);
            let many = run(8);
            totals.0 += one.fork_rate();
            totals.1 += one.coverage();
            totals.2 += one.fork_slot_misses;
            totals.3 += one.speedup();
            totals.4 += many.coverage();
            totals.5 += 1;
        }
        let n = totals.5 as f64;
        println!(
            "{:<10} {:>8.1}% {:>11.1}% {:>11.1}% {:>10} {:>9.3}",
            threshold,
            100.0 * totals.0 / n,
            100.0 * totals.1 / n,
            100.0 * totals.4 / n,
            totals.2,
            totals.3 / n
        );
    }
    println!();
    println!(
        "paper (§6): forking after ~20% of predictions captures over 80% of mispredictions\n\
         (the 8-slot column; a single fork slot saturates near 50%)"
    );
}
