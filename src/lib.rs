//! # cira — branch prediction confidence estimation
//!
//! A full reproduction of Jacobsen, Rotenberg & Smith, *"Assigning
//! Confidence to Conditional Branch Predictions"* (MICRO-29, 1996), as a
//! Rust workspace. This umbrella crate re-exports the component crates:
//!
//! * [`trace`] — branch traces: synthetic IBS-like workloads, a tiny VM,
//!   deterministic PRNGs, and a binary trace codec.
//! * [`predictor`] — gshare and baseline branch predictors.
//! * [`core`] — the paper's contribution: CIR tables, one- and two-level
//!   confidence mechanisms, reduction functions, initialization policies.
//! * [`analysis`] — simulation drivers, bucket statistics, coverage
//!   curves, confusion metrics, Table-1 renderers, CSV/ASCII export.
//! * [`apps`] — the four motivating applications: dual-path execution,
//!   SMT fetch gating, hybrid selection, and prediction reversal.
//! * [`serve`] — an online streaming confidence service: a std-only TCP
//!   server speaking the binary `CIRS` protocol, bit-identical to the
//!   offline engine.
//! * [`obs`] — structured logging, lock-free metrics, and Prometheus
//!   text exposition, threaded through every layer above.
//!
//! # Quick start
//!
//! ```
//! use cira::prelude::*;
//!
//! // Paper setup: 64K gshare + a resetting-counter confidence table.
//! let bench = &ibs_like_suite()[3]; // jpeg
//! let mut predictor = Gshare::paper_large();
//! let mut mechanism = ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(16));
//! let stats = collect_mechanism_buckets(
//!     bench.walker().take(50_000),
//!     &mut predictor,
//!     &mut mechanism,
//! );
//! let curve = CoverageCurve::from_buckets(&stats);
//! // Low-confidence sets concentrate mispredictions:
//! assert!(curve.coverage_at(20.0) > 40.0);
//! ```

#![warn(missing_docs)]

pub use cira_analysis as analysis;
pub use cira_apps as apps;
pub use cira_core as core;
pub use cira_obs as obs;
pub use cira_predictor as predictor;
pub use cira_serve as serve;
pub use cira_trace as trace;

/// The most commonly used items in one import.
pub mod prelude {
    pub use cira_analysis::runner::{
        collect_mechanism_buckets, collect_static_buckets, run_estimator, run_predictor,
    };
    pub use cira_analysis::{
        BucketStats, ConfusionCounts, CounterTable, CoverageCurve, PredictorRun,
    };
    pub use cira_core::one_level::{
        MappedKey, OneLevelCir, ResettingConfidence, SaturatingConfidence,
    };
    pub use cira_core::two_level::TwoLevelCir;
    pub use cira_core::{
        Cir, Confidence, ConfidenceEstimator, ConfidenceMechanism, IndexSpec, InitPolicy, LowRule,
        StaticConfidence, ThresholdEstimator,
    };
    pub use cira_predictor::{
        Bimodal, BranchPredictor, GSelect, Gshare, HistoryRegister, Hybrid, LocalTwoLevel,
        StaticDirection,
    };
    pub use cira_trace::suite::{ibs_like_suite, Benchmark, WorkloadProfile};
    pub use cira_trace::{BranchRecord, TraceSource, TraceStats, VecTrace};
}
