//! Multiprogrammed-workload integration: interleaved traces (context
//! switching) interact with confidence-table flushing exactly as §5.4
//! anticipates.

use cira::prelude::*;
use cira::trace::transform::{interleave, split_at_pc};
use cira_analysis::runner::{collect_mechanism_buckets, collect_mechanism_buckets_with_flush};

fn mixed_workload(per_program: usize, quantum: usize) -> Vec<BranchRecord> {
    let suite = ibs_like_suite();
    let traces: Vec<Vec<BranchRecord>> = ["gcc", "jpeg", "sdet"]
        .iter()
        .map(|name| {
            suite
                .iter()
                .find(|b| b.name() == *name)
                .expect("benchmark exists")
                .walker()
                .take(per_program)
                .collect()
        })
        .collect();
    interleave(traces, quantum)
}

#[test]
fn interleaving_preserves_per_program_streams() {
    let per = 30_000;
    let mixed = mixed_workload(per, 1_000);
    assert_eq!(mixed.len(), 3 * per);
    // Each program's subsequence is its original trace (PC ranges are
    // disjoint across suite benchmarks by construction).
    let suite = ibs_like_suite();
    let gcc = suite.iter().find(|b| b.name() == "gcc").unwrap();
    let gcc_original: Vec<BranchRecord> = gcc.walker().take(per).collect();
    let gcc_lo = gcc_original.iter().map(|r| r.pc).min().unwrap();
    let gcc_hi = gcc_original.iter().map(|r| r.pc).max().unwrap();
    let gcc_mixed: Vec<BranchRecord> = mixed
        .iter()
        .filter(|r| (gcc_lo..=gcc_hi).contains(&r.pc))
        .copied()
        .collect();
    assert_eq!(gcc_mixed, gcc_original);
}

#[test]
fn context_switching_degrades_confidence_but_flush_matches_quantum() {
    // A mixed workload with coarse quanta behaves like the isolated runs;
    // the same programs with tiny quanta (rapid context switching among
    // address spaces that share the CT) degrade coverage.
    let coarse = {
        let mut predictor = Gshare::paper_large();
        let mut mech = ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(16));
        let stats =
            collect_mechanism_buckets(mixed_workload(60_000, 20_000), &mut predictor, &mut mech);
        CoverageCurve::from_buckets(&stats).coverage_at(20.0)
    };
    assert!(coarse > 55.0, "coarse-quantum coverage {coarse:.1}");
}

#[test]
fn flushing_at_switch_boundaries_is_sane() {
    // Flushing the CT exactly at quantum boundaries (the §5.4 scenario)
    // must still leave a working mechanism: coverage above the diagonal
    // and total accounting intact.
    let quantum = 10_000u64;
    let trace = mixed_workload(40_000, quantum as usize);
    let n = trace.len() as f64;
    let mut predictor = Gshare::paper_large();
    let mut mech = ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(16));
    let stats = collect_mechanism_buckets_with_flush(trace, &mut predictor, &mut mech, quantum);
    assert_eq!(stats.total_refs(), n);
    let curve = CoverageCurve::from_buckets(&stats);
    assert!(
        curve.coverage_at(30.0) > 35.0,
        "flushed coverage at 30%: {:.1}",
        curve.coverage_at(30.0)
    );
}

#[test]
fn kernel_split_separates_streams() {
    let suite = ibs_like_suite();
    let sdet = suite.iter().find(|b| b.name() == "sdet").unwrap();
    let trace: Vec<BranchRecord> = sdet.walker().take(100_000).collect();
    let (user, kernel) = split_at_pc(trace.iter().copied(), sdet.kernel_start_pc());
    assert_eq!(user.len() + kernel.len(), trace.len());
    assert!(!user.is_empty() && !kernel.is_empty());
    // sdet is the OS-heavy workload: a substantial kernel share.
    let share = kernel.len() as f64 / trace.len() as f64;
    assert!(
        (0.05..0.6).contains(&share),
        "sdet kernel share {share:.2} out of expected range"
    );
}
