//! End-to-end integration: traces flow through files, predictors,
//! confidence mechanisms, estimators, and analyses consistently.

use cira::prelude::*;
use cira::trace::codec;
use cira::trace::tinyvm::programs;
use cira_analysis::runner;

#[test]
fn codec_round_trip_preserves_simulation_results() {
    let bench = &ibs_like_suite()[1];
    let original: Vec<BranchRecord> = bench.walker().take(50_000).collect();

    let mut encoded = Vec::new();
    codec::write_trace(&mut encoded, original.iter().copied()).unwrap();
    let decoded = codec::read_trace(&encoded[..]).unwrap();
    assert_eq!(decoded, original);

    // Identical traces must produce identical predictor results.
    let a = runner::run_predictor(original, &mut Gshare::paper_small());
    let b = runner::run_predictor(decoded, &mut Gshare::paper_small());
    assert_eq!(a, b);
}

#[test]
fn estimator_agrees_with_bucket_analysis() {
    // A KeyBelow(t) estimator must flag exactly the branches whose bucket
    // key is below t — so its low fraction equals the bucket mass below t.
    let bench = &ibs_like_suite()[2];
    let len = 60_000;
    let threshold = 8u64;

    let mut mech = ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(12));
    let stats = runner::collect_mechanism_buckets(
        bench.walker().take(len),
        &mut Gshare::paper_small(),
        &mut mech,
    );
    let expected_low: f64 = stats
        .iter()
        .filter(|(k, _)| *k < threshold)
        .map(|(_, c)| c.refs)
        .sum::<f64>()
        / stats.total_refs();

    let mut est = ThresholdEstimator::new(
        ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(12)),
        LowRule::KeyBelow(threshold),
    );
    let counts = runner::run_estimator(
        bench.walker().take(len),
        &mut Gshare::paper_small(),
        &mut est,
    );
    assert!(
        (counts.low_fraction() - expected_low).abs() < 1e-9,
        "estimator low fraction {} vs bucket mass {}",
        counts.low_fraction(),
        expected_low
    );
    assert_eq!(counts.total(), len as u64);
}

#[test]
fn tinyvm_programs_flow_through_the_full_stack() {
    let trace = programs::mixed_sample_trace(3);
    assert!(trace.len() > 5_000);

    let mut mech = OneLevelCir::paper_default(IndexSpec::pc_xor_bhr(12));
    let stats = runner::collect_mechanism_buckets(
        trace.iter().copied(),
        &mut Gshare::new(12, 12),
        &mut mech,
    );
    assert_eq!(stats.total_refs(), trace.len() as f64);

    let curve = CoverageCurve::from_buckets(&stats);
    // Confidence must do better than chance (the diagonal) on real control
    // flow, even if VM programs are branchy.
    assert!(
        curve.coverage_at(30.0) > 35.0,
        "coverage at 30%: {:.1}",
        curve.coverage_at(30.0)
    );
}

#[test]
fn static_confidence_estimator_matches_profile() {
    // Build a static low-confidence set from profiling, then check the
    // estimator flags exactly those PCs' executions.
    let bench = &ibs_like_suite()[0];
    let len = 40_000;
    let stats =
        runner::collect_static_buckets(bench.walker().take(len), &mut Gshare::paper_small());
    let curve = CoverageCurve::from_buckets(&stats);
    let (low_pcs, point) = curve
        .low_set_for_branch_budget(25.0)
        .expect("nonempty static curve");
    let est = StaticConfidence::from_low_pcs(low_pcs.iter().copied());

    let mut low = 0u64;
    for r in bench.walker().take(len) {
        if est.estimate(r.pc, 0).is_low() {
            low += 1;
        }
    }
    let measured = 100.0 * low as f64 / len as f64;
    assert!(
        (measured - point.pct_branches).abs() < 0.5,
        "estimator flags {measured:.2}% vs curve point {:.2}%",
        point.pct_branches
    );
}

#[test]
fn suite_benchmarks_are_statistically_distinct() {
    // Different benchmarks must exercise different PC ranges and rates —
    // guards against suite construction regressions.
    let suite = ibs_like_suite();
    let mut rates = Vec::new();
    for bench in suite.iter().take(4) {
        let run = runner::run_predictor(bench.walker().take(80_000), &mut Gshare::paper_large());
        rates.push(run.miss_rate());
    }
    let min = rates.iter().cloned().fold(f64::MAX, f64::min);
    let max = rates.iter().cloned().fold(0.0, f64::max);
    assert!(max > 1.5 * min, "rates too uniform: {rates:?}");
}

#[test]
fn mapped_ones_count_is_popcount_of_cir_keys() {
    let bench = &ibs_like_suite()[3];
    let len = 30_000;
    let mk = || OneLevelCir::paper_default(IndexSpec::pc_xor_bhr(10));
    let mut plain = mk();
    let raw = runner::collect_mechanism_buckets(
        bench.walker().take(len),
        &mut Gshare::new(10, 10),
        &mut plain,
    );
    let mut mapped = MappedKey::ones_count(mk());
    let ones = runner::collect_mechanism_buckets(
        bench.walker().take(len),
        &mut Gshare::new(10, 10),
        &mut mapped,
    );
    // Summing raw CIR buckets by popcount must reproduce the mapped stats.
    for count in 0..=16u32 {
        let expected: f64 = raw
            .iter()
            .filter(|(k, _)| k.count_ones() == count)
            .map(|(_, c)| c.refs)
            .sum();
        let got = ones.cell(count as u64).map(|c| c.refs).unwrap_or(0.0);
        assert!(
            (expected - got).abs() < 1e-9,
            "popcount {count}: raw {expected} vs mapped {got}"
        );
    }
}
