//! Integration tests asserting the qualitative *shape* of the paper's
//! results on a reduced scale (a three-benchmark mini-suite and shorter
//! traces, so the assertions hold in debug-mode CI runs).

use cira::prelude::*;
use cira_analysis::Engine;
use cira_core::two_level::TwoLevelCir;

const LEN: u64 = 400_000;

fn mini_suite() -> Vec<Benchmark> {
    // gcc (hard), jpeg (easy), sdet (OS-heavy): a representative spread.
    ibs_like_suite()
        .into_iter()
        .filter(|b| matches!(b.name(), "gcc" | "jpeg" | "sdet"))
        .collect()
}

#[test]
fn dynamic_confidence_beats_static_at_20_percent() {
    let suite = mini_suite();
    let stat = Engine::global().run_suite_static(&suite, LEN, Gshare::paper_large).curve();
    let dyn_ = Engine::global().run_suite_mechanism(&suite, LEN, Gshare::paper_large, || {
        OneLevelCir::paper_default(IndexSpec::pc_xor_bhr(16))
    })
    .curve();
    assert!(
        dyn_.coverage_at(20.0) > stat.coverage_at(20.0),
        "dynamic {:.1} should beat static {:.1} (paper Fig. 5)",
        dyn_.coverage_at(20.0),
        stat.coverage_at(20.0)
    );
}

#[test]
fn xor_indexing_beats_pc_only() {
    let suite = mini_suite();
    let results = Engine::global().run_suite_mechanisms(&suite, LEN, Gshare::paper_large, || {
        vec![
            Box::new(OneLevelCir::paper_default(IndexSpec::pc(16))) as Box<dyn ConfidenceMechanism>,
            Box::new(OneLevelCir::paper_default(IndexSpec::pc_xor_bhr(16))),
        ]
    });
    let pc = results[0].curve().coverage_at(20.0);
    let xor = results[1].curve().coverage_at(20.0);
    assert!(xor > pc, "xor {xor:.1} vs pc {pc:.1} (paper Fig. 5)");
}

#[test]
fn resetting_counters_track_the_ideal_reduction() {
    let suite = mini_suite();
    let results = Engine::global().run_suite_mechanisms(&suite, LEN, Gshare::paper_large, || {
        let idx = IndexSpec::pc_xor_bhr(16);
        vec![
            Box::new(OneLevelCir::paper_default(idx.clone())) as Box<dyn ConfidenceMechanism>,
            Box::new(ResettingConfidence::paper_default(idx)),
        ]
    });
    let ideal = results[0].curve().coverage_at(20.0);
    let reset = results[1].curve().coverage_at(20.0);
    assert!(
        (ideal - reset).abs() < 10.0,
        "resetting {reset:.1} should track ideal {ideal:.1} (paper Fig. 8)"
    );
}

#[test]
fn saturating_counters_swell_the_max_bucket() {
    let suite = mini_suite();
    let results = Engine::global().run_suite_mechanisms(&suite, LEN, Gshare::paper_large, || {
        let idx = IndexSpec::pc_xor_bhr(16);
        vec![
            Box::new(SaturatingConfidence::paper_default(idx.clone()))
                as Box<dyn ConfidenceMechanism>,
            Box::new(ResettingConfidence::paper_default(idx)),
        ]
    });
    let sat_max = results[0]
        .combined
        .cell(16)
        .map(|c| c.mispredicts)
        .unwrap_or(0.0);
    let reset_max = results[1]
        .combined
        .cell(16)
        .map(|c| c.mispredicts)
        .unwrap_or(0.0);
    assert!(
        sat_max > reset_max,
        "saturating max bucket ({sat_max:.4}) should hold more mispredictions than \
         resetting's ({reset_max:.4}) (paper Fig. 8)"
    );
}

#[test]
fn all_zeros_initialization_is_worst() {
    let suite = mini_suite();
    let results = Engine::global().run_suite_mechanisms(&suite, LEN, Gshare::paper_large, || {
        let idx = IndexSpec::pc_xor_bhr(16);
        vec![
            Box::new(OneLevelCir::new(idx.clone(), 16, InitPolicy::AllOnes))
                as Box<dyn ConfidenceMechanism>,
            Box::new(OneLevelCir::new(idx.clone(), 16, InitPolicy::AllZeros)),
            Box::new(OneLevelCir::new(idx, 16, InitPolicy::Random(1))),
        ]
    });
    let ones = results[0].curve().coverage_at(20.0);
    let zeros = results[1].curve().coverage_at(20.0);
    let random = results[2].curve().coverage_at(20.0);
    assert!(
        ones > zeros && random > zeros,
        "ones {ones:.1} / random {random:.1} should beat zeros {zeros:.1} (paper Fig. 11)"
    );
}

#[test]
fn two_level_is_not_better_than_one_level() {
    let suite = mini_suite();
    let results = Engine::global().run_suite_mechanisms(&suite, LEN, Gshare::paper_large, || {
        vec![
            Box::new(OneLevelCir::paper_default(IndexSpec::pc_xor_bhr(16)))
                as Box<dyn ConfidenceMechanism>,
            Box::new(TwoLevelCir::variant_pcxorbhr_cir()),
        ]
    });
    let one = results[0].curve().coverage_at(20.0);
    let two = results[1].curve().coverage_at(20.0);
    // The paper's conclusion: two-level is similar, if anything slightly
    // worse; certainly not a significant win.
    assert!(
        two < one + 3.0,
        "two-level {two:.1} should not significantly beat one-level {one:.1} (paper Fig. 7)"
    );
}

#[test]
fn small_tables_degrade_gracefully() {
    let suite = mini_suite();
    let results = Engine::global().run_suite_mechanisms(&suite, LEN, Gshare::paper_small, || {
        vec![
            Box::new(ResettingConfidence::new(
                IndexSpec::pc_xor_bhr(12),
                16,
                InitPolicy::AllOnes,
            )) as Box<dyn ConfidenceMechanism>,
            Box::new(ResettingConfidence::new(
                IndexSpec::pc_xor_bhr(7),
                16,
                InitPolicy::AllOnes,
            )),
        ]
    });
    let big = results[0].curve().coverage_at(20.0);
    let small = results[1].curve().coverage_at(20.0);
    assert!(
        big > small,
        "4096-entry CT ({big:.1}) should beat 128-entry CT ({small:.1}) (paper Fig. 10)"
    );
    // Degradation, not collapse.
    assert!(small > 30.0, "128-entry CT still useful: {small:.1}");
}

#[test]
fn jpeg_is_more_predictable_than_gcc() {
    let suite = mini_suite();
    let out = Engine::global().run_suite_mechanism(&suite, LEN, Gshare::paper_large, || {
        OneLevelCir::paper_default(IndexSpec::pc_xor_bhr(16))
    });
    let rate = |name: &str| {
        out.per_benchmark
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.miss_rate())
            .expect("benchmark present")
    };
    assert!(
        rate("jpeg") < rate("gcc"),
        "jpeg {:.3} should be easier than gcc {:.3} (paper Fig. 9)",
        rate("jpeg"),
        rate("gcc")
    );
}

#[test]
fn zero_bucket_dominates_references() {
    let suite = mini_suite();
    let out = Engine::global().run_suite_mechanism(&suite, LEN, Gshare::paper_large, || {
        OneLevelCir::paper_default(IndexSpec::pc_xor_bhr(16))
    });
    let zero = out.combined.cell(0).expect("zero bucket exists");
    let ref_share = zero.refs / out.combined.total_refs();
    let miss_share = zero.mispredicts / out.combined.total_mispredicts();
    assert!(
        ref_share > 0.5,
        "zero bucket should dominate references: {ref_share:.2} (paper: ~0.8)"
    );
    assert!(
        miss_share < 0.3,
        "zero bucket should hold few mispredictions: {miss_share:.2} (paper: 0.12-0.15)"
    );
}
