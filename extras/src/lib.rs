//! Empty library target anchoring the `cira-extras` package.
//!
//! The real content lives in `tests/` (proptest property suites moved out
//! of the workspace members) and `benches/` (Criterion microbenches).
//! This package is excluded from the root workspace so the default
//! offline build never resolves registry dependencies; see the package
//! description in `Cargo.toml`.
