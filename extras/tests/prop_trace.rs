//! Property tests for the trace substrate.

use cira_trace::model::TripCount;
use cira_trace::rng::Xoshiro256StarStar;
use cira_trace::suite::suite_profiles;
use cira_trace::tinyvm::{assemble, Machine};
use cira_trace::{codec, BranchRecord, TraceSource, VecTrace};
use proptest::prelude::*;

proptest! {
    #[test]
    fn next_below_is_always_in_range(seed in any::<u64>(), bound in 1u64..=u64::MAX) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    #[test]
    fn range_inclusive_hits_range(seed in any::<u64>(), lo in 0u64..1000, span in 0u64..1000) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let hi = lo + span;
        for _ in 0..50 {
            let v = rng.range_inclusive(lo, hi);
            prop_assert!((lo..=hi).contains(&v));
        }
    }

    #[test]
    fn pick_weighted_never_picks_zero_weight(
        seed in any::<u64>(),
        weights in proptest::collection::vec(0.0f64..10.0, 1..8)
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for _ in 0..50 {
            let i = rng.pick_weighted(&weights);
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0, "picked zero-weight index {i}");
        }
    }

    #[test]
    fn trip_count_samples_within_bounds(
        seed in any::<u64>(),
        lo in 0u32..50,
        span in 0u32..50
    ) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let t = TripCount::Uniform(lo, lo + span);
        for _ in 0..30 {
            let v = t.sample(&mut rng);
            prop_assert!((lo..=lo + span).contains(&v));
        }
    }

    #[test]
    fn geometric_trips_respect_cap(seed in any::<u64>(), mean in 0.1f64..50.0, cap in 1u32..200) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let t = TripCount::Geometric { mean, cap };
        for _ in 0..30 {
            prop_assert!(t.sample(&mut rng) <= cap);
        }
    }

    #[test]
    fn streaming_reader_matches_bulk_read(
        records in proptest::collection::vec(
            (any::<u64>(), any::<bool>()).prop_map(|(pc, t)| BranchRecord::new(pc, t)),
            0..300
        )
    ) {
        let mut buf = Vec::new();
        codec::write_trace(&mut buf, records.iter().copied()).unwrap();
        let bulk = codec::read_trace(&buf[..]).unwrap();
        let streamed: Result<Vec<_>, _> = codec::TraceReader::new(&buf[..]).unwrap().collect();
        prop_assert_eq!(&bulk, &records);
        prop_assert_eq!(streamed.unwrap(), records);
    }

    #[test]
    fn vec_trace_reset_is_idempotent(
        records in proptest::collection::vec(
            (any::<u64>(), any::<bool>()).prop_map(|(pc, t)| BranchRecord::new(pc, t)),
            0..100
        ),
        advance in 0usize..120
    ) {
        let mut t = VecTrace::new(records.clone());
        for _ in 0..advance {
            t.next();
        }
        t.reset();
        let replay: Vec<_> = t.collect();
        prop_assert_eq!(replay, records);
    }

    #[test]
    fn walkers_are_deterministic_for_any_seed(seed in any::<u64>()) {
        let program = suite_profiles()[3].build(); // jpeg-shaped program
        let a: Vec<_> = program.walker(seed).take(300).collect();
        let b: Vec<_> = program.walker(seed).take(300).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn vm_loop_counts_match_assembly(n in 1i64..60) {
        let src = format!(
            "li r1, {n}\nli r2, 0\nloop: addi r2, r2, 1\nblt r2, r1, loop\nhalt"
        );
        let mut m = Machine::new(assemble(&src).unwrap(), 0);
        let trace = m.run(100_000).unwrap();
        prop_assert_eq!(m.reg(2), n);
        prop_assert_eq!(trace.len() as i64, n);
        prop_assert_eq!(trace.iter().filter(|r| r.taken).count() as i64, n - 1);
    }
}

proptest! {
    #[test]
    fn assembler_never_panics_on_arbitrary_text(src in ".{0,200}") {
        // Any input must produce Ok or a structured error, never a panic.
        let _ = assemble(&src);
    }

    #[test]
    fn assembler_never_panics_on_token_soup(
        tokens in proptest::collection::vec(
            proptest::sample::select(vec![
                "li", "mov", "add", "addi", "beq", "bne", "jmp", "halt", "ld", "st",
                "r0", "r1", "r15", "r16", "42", "-7", "0x1f", "loop:", "loop", ",", ";x",
            ]),
            0..30
        )
    ) {
        let src = tokens.join(" ");
        let _ = assemble(&src);
    }

    #[test]
    fn machine_never_panics_on_valid_programs(
        n in 1i64..20,
        mem in 0usize..64,
        budget in 0u64..5000
    ) {
        // A structurally valid program must either halt, exhaust the
        // budget, or report a structured VM error — never panic.
        let src = format!(
            "li r1, {n}\nli r2, 0\nloop: addi r2, r2, 1\nld r3, r2, 0\nblt r2, r1, loop\nhalt"
        );
        let mut m = Machine::new(assemble(&src).unwrap(), mem);
        let _ = m.run(budget);
    }
}
