//! Cross-crate property-based tests (proptest) on the core invariants.

use std::collections::HashSet;

use cira::prelude::*;
use cira::trace::codec;
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = BranchRecord> {
    (any::<u64>(), any::<bool>()).prop_map(|(pc, taken)| BranchRecord::new(pc, taken))
}

proptest! {
    #[test]
    fn codec_round_trips_any_trace(records in proptest::collection::vec(arb_record(), 0..400)) {
        let mut buf = Vec::new();
        codec::write_trace(&mut buf, records.iter().copied()).unwrap();
        let back = codec::read_trace(&buf[..]).unwrap();
        prop_assert_eq!(back, records);
    }

    #[test]
    fn coverage_curves_are_monotone_and_complete(
        observations in proptest::collection::vec((0u64..32, any::<bool>()), 1..600)
    ) {
        let mut stats = BucketStats::new();
        for (key, miss) in &observations {
            stats.observe(*key, *miss);
        }
        let curve = CoverageCurve::from_buckets(&stats);
        let pts = curve.points();
        for w in pts.windows(2) {
            prop_assert!(w[1].pct_branches >= w[0].pct_branches - 1e-9);
            prop_assert!(w[1].pct_mispredicts >= w[0].pct_mispredicts - 1e-9);
            // Worst-first ordering of bucket rates.
            prop_assert!(w[0].bucket_miss_rate >= w[1].bucket_miss_rate - 1e-12);
        }
        let last = pts.last().unwrap();
        prop_assert!((last.pct_branches - 100.0).abs() < 1e-6);
        // coverage_at is monotone in its argument.
        let mut prev = 0.0;
        for x in [0.0, 5.0, 25.0, 50.0, 75.0, 100.0] {
            let y = curve.coverage_at(x);
            prop_assert!(y >= prev - 1e-9);
            prop_assert!((0.0..=100.0 + 1e-9).contains(&y));
            prev = y;
        }
    }

    #[test]
    fn resetting_counter_equals_cir_distance(
        outcomes in proptest::collection::vec(any::<bool>(), 1..200)
    ) {
        // The resetting counter must equal the full CIR's
        // distance-since-misprediction after every update (both at the
        // paper's width/max of 16, all-ones init).
        let mut counter = ResettingConfidence::paper_default(IndexSpec::pc(4));
        let mut cir_table = OneLevelCir::paper_default(IndexSpec::pc(4));
        for &ok in &outcomes {
            counter.update(0x40, 0, ok);
            cir_table.update(0x40, 0, ok);
            let cir = cir_table.read_cir(0x40, 0);
            prop_assert_eq!(
                counter.read_key(0x40, 0),
                cir.distance_since_misprediction() as u64
            );
        }
    }

    #[test]
    fn ones_count_mapping_is_popcount(
        outcomes in proptest::collection::vec(any::<bool>(), 1..100)
    ) {
        let mut raw = OneLevelCir::paper_default(IndexSpec::pc(4));
        let mut mapped = MappedKey::ones_count(OneLevelCir::paper_default(IndexSpec::pc(4)));
        for &ok in &outcomes {
            prop_assert_eq!(
                mapped.read_key(0x8, 0),
                raw.read_key(0x8, 0).count_ones() as u64
            );
            raw.update(0x8, 0, ok);
            mapped.update(0x8, 0, ok);
        }
    }

    #[test]
    fn threshold_estimator_matches_rule(
        outcomes in proptest::collection::vec(any::<bool>(), 1..150),
        threshold in 0u64..18
    ) {
        let mut mech = ResettingConfidence::paper_default(IndexSpec::pc(4));
        let mut est = ThresholdEstimator::new(
            ResettingConfidence::paper_default(IndexSpec::pc(4)),
            LowRule::KeyBelow(threshold),
        );
        for &ok in &outcomes {
            let key = mech.read_key(0x10, 0);
            let expected = if key < threshold { Confidence::Low } else { Confidence::High };
            prop_assert_eq!(est.estimate(0x10, 0), expected);
            mech.update(0x10, 0, ok);
            est.update(0x10, 0, ok);
        }
    }

    #[test]
    fn confusion_count_identities(
        events in proptest::collection::vec((any::<bool>(), any::<bool>()), 1..400)
    ) {
        let mut c = ConfusionCounts::new();
        for (low, correct) in &events {
            let conf = if *low { Confidence::Low } else { Confidence::High };
            c.observe(conf, *correct);
        }
        prop_assert_eq!(
            c.total(),
            c.high_correct + c.high_incorrect + c.low_correct + c.low_incorrect
        );
        // sensitivity * total_incorrect == low_incorrect
        if c.total_incorrect() > 0 {
            prop_assert!(
                (c.sensitivity() * c.total_incorrect() as f64 - c.low_incorrect as f64).abs()
                    < 1e-9
            );
        }
        for m in [c.sensitivity(), c.specificity(), c.pvn(), c.pvp(), c.low_fraction()] {
            prop_assert!((0.0..=1.0).contains(&m));
        }
    }

    #[test]
    fn static_confidence_flags_exactly_the_set(
        pcs in proptest::collection::hash_set(0u64..500, 0..40),
        probes in proptest::collection::vec(0u64..500, 0..60)
    ) {
        let set: HashSet<u64> = pcs;
        let est = StaticConfidence::from_low_pcs(set.iter().copied());
        for pc in probes {
            let expected = set.contains(&pc);
            prop_assert_eq!(est.estimate(pc, 0).is_low(), expected);
        }
    }

    #[test]
    fn history_register_window_semantics(
        width in 1u32..=64,
        outcomes in proptest::collection::vec(any::<bool>(), 0..130)
    ) {
        let mut h = HistoryRegister::new(width);
        for &o in &outcomes {
            h.push(o);
        }
        // Reference: reconstruct the masked window from the outcome list.
        let mut expected: u64 = 0;
        for &o in &outcomes {
            expected = (expected << 1) | o as u64;
            if width < 64 {
                expected &= (1u64 << width) - 1;
            }
        }
        prop_assert_eq!(h.value(), expected);
    }

    #[test]
    fn bucket_normalization_preserves_rates(
        observations in proptest::collection::vec((0u64..16, any::<bool>()), 1..300)
    ) {
        let mut stats = BucketStats::new();
        for (k, m) in &observations {
            stats.observe(*k, *m);
        }
        let n = stats.normalized();
        prop_assert!((n.total_refs() - 1.0).abs() < 1e-9);
        prop_assert!((n.miss_rate() - stats.miss_rate()).abs() < 1e-9);
        // Per-bucket rates unchanged.
        for (k, cell) in stats.iter() {
            let nc = n.cell(k).unwrap();
            prop_assert!((cell.miss_rate() - nc.miss_rate()).abs() < 1e-9);
        }
    }
}
