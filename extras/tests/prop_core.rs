//! Property tests for the confidence-mechanism primitives.

use cira_core::one_level::{OneLevelCir, ResettingConfidence, SaturatingConfidence};
use cira_core::two_level::TwoLevelCir;
use cira_core::{Cir, ConfidenceMechanism, IndexInputs, IndexSpec, InitPolicy};
use cira_predictor::SaturatingCounter;
use proptest::prelude::*;

proptest! {
    #[test]
    fn cir_matches_reference_shift_register(
        width in 1u32..=32,
        outcomes in proptest::collection::vec(any::<bool>(), 0..100)
    ) {
        let mut cir = Cir::zeroed(width);
        let mut reference: Vec<bool> = vec![false; width as usize]; // newest first
        for &correct in &outcomes {
            cir.push(correct);
            reference.insert(0, !correct);
            reference.truncate(width as usize);
            let expected_bits: u32 = reference
                .iter()
                .enumerate()
                .map(|(i, &b)| (b as u32) << i)
                .sum();
            prop_assert_eq!(cir.value(), expected_bits);
            prop_assert_eq!(
                cir.ones_count() as usize,
                reference.iter().filter(|&&b| b).count()
            );
            let expected_distance = reference
                .iter()
                .position(|&b| b)
                .map(|p| p as u32)
                .unwrap_or(width);
            prop_assert_eq!(cir.distance_since_misprediction(), expected_distance);
        }
    }

    #[test]
    fn saturating_counter_stays_in_bounds(
        max in 1u32..100,
        ops in proptest::collection::vec(any::<bool>(), 0..200)
    ) {
        let mut c = SaturatingCounter::new(0, max);
        for &up in &ops {
            if up {
                c.inc();
            } else {
                c.dec();
            }
            prop_assert!(c.value() <= max);
        }
    }

    #[test]
    fn index_spec_output_is_within_table(
        bits in 1u32..=20,
        pc in any::<u64>(),
        bhr in any::<u64>(),
        cir in any::<u64>(),
        gcir in any::<u64>()
    ) {
        for spec in [
            IndexSpec::pc(bits),
            IndexSpec::bhr(bits),
            IndexSpec::pc_xor_bhr(bits),
            IndexSpec::cir(bits),
            IndexSpec::cir_xor_pc_xor_bhr(bits),
            IndexSpec::global_cir(bits),
        ] {
            let idx = spec.index(IndexInputs { pc, bhr, cir, global_cir: gcir });
            prop_assert!(idx < spec.table_len(), "{spec}: {idx}");
        }
        if bits >= 2 {
            let spec = IndexSpec::pc_concat_bhr(bits);
            let idx = spec.index(IndexInputs { pc, bhr, cir, global_cir: gcir });
            prop_assert!(idx < spec.table_len());
        }
    }

    #[test]
    fn init_policies_produce_valid_cirs(
        width in 1u32..=32,
        entry in 0usize..4096,
        seed in any::<u64>()
    ) {
        for policy in [
            InitPolicy::AllOnes,
            InitPolicy::AllZeros,
            InitPolicy::LastBit,
            InitPolicy::Random(seed),
        ] {
            let cir = policy.initial_cir(width, entry);
            prop_assert_eq!(cir.width(), width);
            prop_assert!(cir.value() <= cir.mask());
            let count = policy.initial_count(16, entry);
            prop_assert!(count <= 16);
        }
    }

    #[test]
    fn mechanisms_never_panic_and_keys_stay_in_space(
        stream in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<bool>()), 0..300)
    ) {
        let mut one = OneLevelCir::new(IndexSpec::pc_xor_bhr(6), 8, InitPolicy::AllOnes);
        let mut sat = SaturatingConfidence::new(IndexSpec::pc(6), 7, InitPolicy::AllZeros);
        let mut reset = ResettingConfidence::new(IndexSpec::bhr(6), 9, InitPolicy::LastBit);
        let mut two = TwoLevelCir::new(
            IndexSpec::pc(5),
            6,
            IndexSpec::cir_xor_pc_xor_bhr(6),
            5,
            InitPolicy::Random(3),
        );
        for &(pc, bhr, correct) in &stream {
            for (mech, space) in [
                (&mut one as &mut dyn ConfidenceMechanism, 1u64 << 8),
                (&mut sat, 8),
                (&mut reset, 10),
                (&mut two, 1 << 5),
            ] {
                let key = mech.read_key(pc, bhr);
                prop_assert!(key < space, "{}: key {key} space {space}", mech.describe());
                mech.update(pc, bhr, correct);
            }
        }
    }

    #[test]
    fn read_key_is_pure(
        pc in any::<u64>(),
        bhr in any::<u64>(),
        warmup in proptest::collection::vec(any::<bool>(), 0..50)
    ) {
        let mut mech = ResettingConfidence::new(IndexSpec::pc_xor_bhr(8), 16, InitPolicy::AllOnes);
        for &c in &warmup {
            mech.update(pc, bhr, c);
        }
        let a = mech.read_key(pc, bhr);
        let b = mech.read_key(pc, bhr);
        prop_assert_eq!(a, b);
    }
}
