//! Property tests for the analysis machinery.

use cira_analysis::{BucketStats, CounterTable, CoverageCurve};
use proptest::prelude::*;

fn arb_observations() -> impl Strategy<Value = Vec<(u64, bool)>> {
    proptest::collection::vec((0u64..24, any::<bool>()), 1..500)
}

proptest! {
    #[test]
    fn totals_match_observations(obs in arb_observations()) {
        let mut stats = BucketStats::new();
        for (k, m) in &obs {
            stats.observe(*k, *m);
        }
        prop_assert_eq!(stats.total_refs(), obs.len() as f64);
        prop_assert_eq!(
            stats.total_mispredicts(),
            obs.iter().filter(|(_, m)| *m).count() as f64
        );
        let cell_sum: f64 = stats.iter().map(|(_, c)| c.refs).sum();
        prop_assert!((cell_sum - stats.total_refs()).abs() < 1e-9);
    }

    #[test]
    fn merge_weighted_is_linear(obs in arb_observations(), w in 0.0f64..10.0) {
        let mut a = BucketStats::new();
        for (k, m) in &obs {
            a.observe(*k, *m);
        }
        let mut merged = BucketStats::new();
        merged.merge_weighted(&a, w);
        prop_assert!((merged.total_refs() - a.total_refs() * w).abs() < 1e-6);
        prop_assert!(
            (merged.total_mispredicts() - a.total_mispredicts() * w).abs() < 1e-6
        );
    }

    #[test]
    fn equal_weight_combination_is_average_of_rates(
        obs1 in arb_observations(),
        obs2 in arb_observations()
    ) {
        let mut a = BucketStats::new();
        for (k, m) in &obs1 {
            a.observe(*k, *m);
        }
        let mut b = BucketStats::new();
        for (k, m) in &obs2 {
            b.observe(*k, *m);
        }
        let c = BucketStats::combine_equal_weight([&a, &b]);
        let expected = (a.miss_rate() + b.miss_rate()) / 2.0;
        prop_assert!((c.miss_rate() - expected).abs() < 1e-9);
    }

    #[test]
    fn counter_table_cumulative_columns_are_consistent(obs in arb_observations()) {
        let mut stats = BucketStats::new();
        for (k, m) in &obs {
            stats.observe(*k, *m);
        }
        let table = CounterTable::from_buckets(&stats, 23);
        let rows = table.rows();
        prop_assert_eq!(rows.len(), 24);
        let mut cum_refs = 0.0;
        for r in rows {
            cum_refs += r.pct_refs;
            prop_assert!((r.cum_pct_refs - cum_refs).abs() < 1e-6);
            prop_assert!(r.cum_pct_mispredicts <= 100.0 + 1e-9);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&r.miss_rate));
        }
        // All keys are within 0..24, so the last row reaches 100%.
        let last = rows.last().unwrap();
        prop_assert!((last.cum_pct_refs - 100.0).abs() < 1e-6);
    }

    #[test]
    fn low_set_budget_is_respected(obs in arb_observations(), budget in 0.0f64..100.0) {
        let mut stats = BucketStats::new();
        for (k, m) in &obs {
            stats.observe(*k, *m);
        }
        let curve = CoverageCurve::from_buckets(&stats);
        if let Some((keys, point)) = curve.low_set_for_branch_budget(budget) {
            prop_assert!(point.pct_branches <= budget + 1e-6);
            prop_assert!(!keys.is_empty());
            // The returned keys are exactly the curve prefix.
            let prefix: Vec<u64> =
                curve.points()[..keys.len()].iter().map(|p| p.key).collect();
            prop_assert_eq!(keys, prefix);
        }
    }

    #[test]
    fn thinned_curves_are_subsets_ending_at_100(obs in arb_observations(), delta in 0.1f64..20.0) {
        let mut stats = BucketStats::new();
        for (k, m) in &obs {
            stats.observe(*k, *m);
        }
        let curve = CoverageCurve::from_buckets(&stats);
        let thin = curve.thinned(delta);
        prop_assert!(thin.len() <= curve.points().len());
        prop_assert_eq!(thin.last(), curve.points().last());
        for p in &thin {
            prop_assert!(curve.points().contains(p));
        }
    }
}
