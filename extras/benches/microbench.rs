//! Criterion microbenchmarks quantifying the §5 cost arguments:
//! throughput of the predictors, of the confidence-table organizations
//! (full CIR vs counter-compressed), the two-level overhead, trace
//! generation, and the trace codec.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cira_analysis::runner::collect_mechanism_buckets;
use cira_core::one_level::{OneLevelCir, ResettingConfidence, SaturatingConfidence};
use cira_core::two_level::TwoLevelCir;
use cira_core::{ConfidenceMechanism, IndexSpec, InitPolicy};
use cira_predictor::{Bimodal, BranchPredictor, Gshare, HistoryRegister, Hybrid};
use cira_trace::suite::ibs_like_suite;
use cira_trace::{codec, BranchRecord};

fn bench_trace(n: usize) -> Vec<BranchRecord> {
    ibs_like_suite()[0].walker().take(n).collect()
}

fn drive_predictor<P: BranchPredictor>(trace: &[BranchRecord], p: &mut P) -> u64 {
    let mut bhr = HistoryRegister::new(64);
    let mut miss = 0u64;
    for r in trace {
        let h = bhr.value();
        if p.predict(r.pc, h) != r.taken {
            miss += 1;
        }
        p.update(r.pc, h, r.taken);
        bhr.push(r.taken);
    }
    miss
}

fn predictors(c: &mut Criterion) {
    let trace = bench_trace(100_000);
    let mut group = c.benchmark_group("predictor");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("gshare_64k", |b| {
        b.iter(|| drive_predictor(&trace, &mut Gshare::paper_large()))
    });
    group.bench_function("gshare_4k", |b| {
        b.iter(|| drive_predictor(&trace, &mut Gshare::paper_small()))
    });
    group.bench_function("bimodal_4k", |b| {
        b.iter(|| drive_predictor(&trace, &mut Bimodal::new(12)))
    });
    group.bench_function("hybrid_gshare_bimodal", |b| {
        b.iter(|| {
            drive_predictor(
                &trace,
                &mut Hybrid::new(Gshare::new(12, 12), Bimodal::new(12), 12),
            )
        })
    });
    group.finish();
}

fn drive_mechanism<M: ConfidenceMechanism>(trace: &[BranchRecord], m: &mut M) -> u64 {
    // Confidence structures see (pc, bhr, correct); take correctness from
    // the record's direction so only the mechanism's own cost is measured.
    let mut bhr = HistoryRegister::new(64);
    let mut acc = 0u64;
    for r in trace {
        let h = bhr.value();
        acc = acc.wrapping_add(m.read_key(r.pc, h));
        m.update(r.pc, h, r.taken);
        bhr.push(r.taken);
    }
    acc
}

fn mechanisms(c: &mut Criterion) {
    let trace = bench_trace(100_000);
    let mut group = c.benchmark_group("confidence_mechanism");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("one_level_cir_16b", |b| {
        b.iter(|| {
            drive_mechanism(
                &trace,
                &mut OneLevelCir::paper_default(IndexSpec::pc_xor_bhr(16)),
            )
        })
    });
    group.bench_function("resetting_counters", |b| {
        b.iter(|| {
            drive_mechanism(
                &trace,
                &mut ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(16)),
            )
        })
    });
    group.bench_function("saturating_counters", |b| {
        b.iter(|| {
            drive_mechanism(
                &trace,
                &mut SaturatingConfidence::paper_default(IndexSpec::pc_xor_bhr(16)),
            )
        })
    });
    group.bench_function("two_level", |b| {
        b.iter(|| drive_mechanism(&trace, &mut TwoLevelCir::variant_pcxorbhr_cir()))
    });
    group.finish();
}

fn table_sizes(c: &mut Criterion) {
    let trace = bench_trace(50_000);
    let mut group = c.benchmark_group("ct_size_sweep");
    group.throughput(Throughput::Elements(trace.len() as u64));
    for bits in [7u32, 10, 12, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(1u32 << bits),
            &bits,
            |b, &bits| {
                b.iter(|| {
                    drive_mechanism(
                        &trace,
                        &mut ResettingConfidence::new(
                            IndexSpec::pc_xor_bhr(bits),
                            16,
                            InitPolicy::AllOnes,
                        ),
                    )
                })
            },
        );
    }
    group.finish();
}

fn generation_and_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace");
    group.throughput(Throughput::Elements(50_000));
    let bench = ibs_like_suite().remove(0);
    group.bench_function("generate_50k", |b| {
        b.iter(|| bench.walker().take(50_000).count())
    });
    let records = bench_trace(50_000);
    group.bench_function("encode_50k", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(records.len() * 2);
            codec::write_trace(&mut buf, records.iter().copied()).unwrap();
            buf.len()
        })
    });
    let mut encoded = Vec::new();
    codec::write_trace(&mut encoded, records.iter().copied()).unwrap();
    group.bench_function("decode_50k", |b| {
        b.iter(|| codec::read_trace(&encoded[..]).unwrap().len())
    });
    group.finish();
}

fn end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.throughput(Throughput::Elements(100_000));
    let bench = ibs_like_suite().remove(0);
    group.bench_function("predictor_plus_confidence_100k", |b| {
        b.iter(|| {
            let mut predictor = Gshare::paper_large();
            let mut mech = ResettingConfidence::paper_default(IndexSpec::pc_xor_bhr(16));
            collect_mechanism_buckets(bench.walker().take(100_000), &mut predictor, &mut mech)
                .total_mispredicts()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    predictors,
    mechanisms,
    table_sizes,
    generation_and_codec,
    end_to_end
);
criterion_main!(benches);
