#!/usr/bin/env bash
# Rejects committed benchmark artifacts recorded at smoke trace lengths.
#
# The figure binaries honour CIRA_TRACE_LEN so CI can smoke-run them
# cheaply — but the *committed* BENCH_*.json artifacts are the repo's
# reference numbers and must always be recorded at the full reference
# length (1M branches per benchmark). This guard fails the build if a
# smoke-length artifact is ever checked in by mistake.
#
# Usage: scripts/check_bench_reference.sh [min_trace_len]

set -euo pipefail
cd "$(dirname "$0")/.."

MIN=${1:-1000000}
status=0

for artifact in BENCH_engine.json BENCH_obs.json BENCH_store.json BENCH_serve.json; do
    if [ ! -f "$artifact" ]; then
        echo "FAIL: $artifact is missing" >&2
        status=1
        continue
    fi
    len=$(grep -o '"trace_len": *[0-9]*' "$artifact" | head -n1 | grep -o '[0-9]*$' || true)
    if [ -z "$len" ]; then
        echo "FAIL: $artifact does not record a trace_len" >&2
        status=1
    elif [ "$len" -lt "$MIN" ]; then
        echo "FAIL: $artifact recorded at trace_len=$len (< $MIN): re-record with" >&2
        echo "      taskset -c 0 cargo run --release -p cira-bench --bin <bench>" >&2
        status=1
    else
        echo "ok: $artifact recorded at trace_len=$len (>= $MIN)"
    fi
done

# BENCH_obs.json must be recorded by the rev-1.5 bench, which measures
# the flight-recorder's compiled-in-but-disabled cost alongside plain
# metric instrumentation. An artifact without these keys predates the
# tracing subsystem and says nothing about its overhead.
if [ -f BENCH_obs.json ]; then
    for key in traced_disabled trace_disabled_overhead_pct; do
        if ! grep -q "\"$key\"" BENCH_obs.json; then
            echo "FAIL: BENCH_obs.json lacks \"$key\": re-record with" >&2
            echo "      cargo run --release -p cira-bench --bin obs_overhead" >&2
            status=1
        fi
    done
    if [ "$status" -eq 0 ]; then
        echo "ok: BENCH_obs.json records the disabled-tracing overhead"
    fi
fi

# BENCH_serve.json additionally carries host provenance (the connection
# benchmark is dominated by the kernel's network stack, so a number
# without its toolchain/kernel/core-count is not reproducible).
if [ -f BENCH_serve.json ]; then
    for key in rustc kernel host_cores sessions_per_sec; do
        if ! grep -q "\"$key\"" BENCH_serve.json; then
            echo "FAIL: BENCH_serve.json lacks \"$key\"" >&2
            status=1
        fi
    done
    if [ "$status" -eq 0 ]; then
        echo "ok: BENCH_serve.json records provenance (rustc/kernel/host_cores)"
    fi
fi

exit $status
